"""ExperimentStore behavior: round-trips, validation, corruption, maintenance."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.store import STORE_SCHEMA_VERSION, ExperimentStore, open_store
from repro.store.fingerprint import SALT_ENV_VAR
from repro.store.store import STORE_ENV_VAR

FP = "ab" * 16


@pytest.fixture
def store(tmp_path) -> ExperimentStore:
    return ExperimentStore(tmp_path / "store")


class TestJsonArtifacts:
    def test_round_trip(self, store):
        payload = {"rows": [1, 2.5, "x"], "nested": {"a": None, "b": True}}
        store.put("table1/row", FP, payload)
        assert store.get("table1/row", FP) == payload
        assert store.hits == 1 and store.puts == 1

    def test_miss_on_absent_key(self, store):
        assert store.get("table1/row", FP) is None
        assert store.misses == 1

    def test_contains_is_cheap_existence(self, store):
        assert not store.contains("k", FP)
        store.put("k", FP, {"v": 1})
        assert store.contains("k", FP)

    def test_kinds_partition_the_namespace(self, store):
        store.put("a", FP, {"v": 1})
        store.put("b", FP, {"v": 2})
        assert store.get("a", FP) == {"v": 1}
        assert store.get("b", FP) == {"v": 2}

    def test_put_overwrites_atomically(self, store):
        store.put("k", FP, {"v": 1})
        store.put("k", FP, {"v": 2})
        assert store.get("k", FP) == {"v": 2}

    def test_no_temporary_files_left_behind(self, store):
        for index in range(5):
            store.put("k", FP, {"v": index})
        leftovers = [p for p in store.root.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []


class TestCorruptionDetection:
    """A damaged artifact must be treated as a miss, never served."""

    def test_truncated_artifact_is_a_miss_and_dropped(self, store):
        path = store.put("k", FP, {"rows": list(range(100))})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get("k", FP) is None
        assert store.corrupt_dropped == 1
        assert not path.exists()
        # The caller recomputes and the key works again.
        store.put("k", FP, {"rows": [1]})
        assert store.get("k", FP) == {"rows": [1]}

    def test_bit_flip_in_payload_fails_the_checksum(self, store):
        path = store.put("k", FP, {"value": 12345})
        wrapper = json.loads(path.read_text())
        wrapper["payload"]["value"] = 54321
        path.write_text(json.dumps(wrapper))
        assert store.get("k", FP) is None
        assert store.corrupt_dropped == 1

    def test_wrong_schema_version_is_a_miss(self, store):
        path = store.put("k", FP, {"v": 1})
        wrapper = json.loads(path.read_text())
        wrapper["schema"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(wrapper))
        assert store.get("k", FP) is None

    def test_fingerprint_mismatch_is_a_miss(self, store):
        path = store.put("k", FP, {"v": 1})
        other = "cd" * 16
        target = store.path_for("k", other)
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        assert store.get("k", other) is None

    def test_non_json_garbage_is_a_miss(self, store):
        path = store.path_for("k", FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00\x01not json")
        assert store.get("k", FP) is None


class TestArrayArtifacts:
    def test_round_trip_bit_identical(self, store, rng):
        arrays = {"u": rng.standard_normal((16, 8)), "s": rng.standard_normal(8)}
        store.put_arrays("svd", FP, arrays)
        loaded = store.get_arrays("svd", FP)
        assert set(loaded) == {"u", "s"}
        assert np.array_equal(loaded["u"], arrays["u"])
        assert np.array_equal(loaded["s"], arrays["s"])

    def test_truncated_npz_is_a_miss_and_dropped(self, store, rng):
        path = store.put_arrays("svd", FP, {"u": rng.standard_normal((64, 64))})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get_arrays("svd", FP) is None
        assert not path.exists()

    def test_absent_arrays_are_a_miss(self, store):
        assert store.get_arrays("svd", FP) is None


class TestMaintenance:
    def test_ls_lists_every_artifact(self, store, rng):
        store.put("table1/row", FP, {"v": 1})
        store.put("fig6/panel", "cd" * 16, {"v": 2})
        store.put_arrays("svd", "ef" * 16, {"u": rng.standard_normal(4)})
        entries = store.ls()
        assert len(entries) == 3
        assert {entry.kind for entry in entries} == {"table1/row", "fig6/panel", "svd"}
        assert all(not entry.stale for entry in entries if entry.salt is not None)

    def test_gc_keeps_valid_artifacts(self, store):
        store.put("k", FP, {"v": 1})
        stats = store.gc()
        assert stats.kept == 1 and stats.removed == 0
        assert store.get("k", FP) == {"v": 1}

    def test_gc_removes_corrupt_and_temporary_files(self, store):
        path = store.put("k", FP, {"v": 1})
        data = path.read_bytes()
        path.write_bytes(data[:10])
        tmp = path.with_name(path.name + ".tmp-123-dead")
        tmp.write_bytes(b"partial")
        stats = store.gc()
        assert stats.removed == 2
        assert not path.exists() and not tmp.exists()

    def test_gc_removes_stale_salt_artifacts(self, store, monkeypatch):
        store.put("k", FP, {"v": 1})
        monkeypatch.setenv(SALT_ENV_VAR, "new-code-version")
        stats = store.gc()
        assert stats.removed == 1 and stats.kept == 0

    def test_gc_removes_old_layout_versions(self, store):
        old = store.root / "v0" / "k"
        old.mkdir(parents=True)
        (old / "stale.json").write_text("{}")
        store.put("k", FP, {"v": 1})
        stats = store.gc()
        assert stats.removed >= 1
        assert not (store.root / "v0").exists()
        assert store.get("k", FP) == {"v": 1}

    def test_gc_prunes_stale_heartbeats_per_namespace_ttl(self, store):
        """gc drops dead workers' heartbeat records, judged by each
        namespace's own lease TTL (from its plan manifest).

        Regression: heartbeat files were never pruned, so every crashed or
        interrupted sweep's workers haunted `repro workers status` forever.
        """
        import os

        from repro.store import LeaseBoard

        board = LeaseBoard(store.root, "crashed-run", ttl=30.0)
        board.write_plan({"names": ["fig7"], "nshards": 4, "lease_ttl": 5.0})
        board.beat("worker-0-dead")
        board.beat("worker-1-live")
        dead = board.heartbeat_path("worker-0-dead")
        stale_at = time.time() - 60.0
        os.utime(dead, (stale_at, stale_at))
        # Age the record's own beat field too (pruning reads it first).
        record = json.loads(dead.read_text())
        record["beat"] = stale_at
        dead.write_text(json.dumps(record))

        stats = store.gc()
        assert stats.heartbeats_pruned == 1
        assert not dead.exists()
        assert board.heartbeat_path("worker-1-live").exists()

    def test_gc_removes_namespaces_left_empty_by_pruning(self, store):
        from repro.store import LeaseBoard

        board = LeaseBoard(store.root, "long-gone", ttl=30.0)
        board.beat("worker-0")
        record_path = board.heartbeat_path("worker-0")
        record = json.loads(record_path.read_text())
        record["beat"] = time.time() - 3600.0
        record_path.write_text(json.dumps(record))

        stats = store.gc()
        assert stats.heartbeats_pruned == 1
        assert not board.directory.exists()

    def test_clear_removes_everything(self, store):
        store.put("a", FP, {"v": 1})
        store.put("b", "cd" * 16, {"v": 2})
        assert store.clear() == 2
        assert store.get("a", FP) is None

    def test_clear_and_gc_never_touch_unrelated_data(self, store):
        """--store may point at a shared directory; only v<digits> trees are ours."""
        store.root.mkdir(parents=True, exist_ok=True)
        venv = store.root / "venv"                      # starts with "v", not a layout tree
        (venv / "bin").mkdir(parents=True)
        (venv / "bin" / "python").write_text("#!fake")
        stray = store.root / "notes.txt"
        stray.write_text("unrelated")
        store.put("a", FP, {"v": 1})

        store.gc()
        assert (venv / "bin" / "python").exists() and stray.exists()
        store.clear()
        assert (venv / "bin" / "python").exists() and stray.exists()
        assert not store.version_root.exists()

    def test_stats_by_kind(self, store):
        store.put("a", FP, {"v": 1})
        store.put("a", "cd" * 16, {"v": 2})
        totals = store.stats()
        count, size = totals["a"]
        assert count == 2 and size > 0


class TestOpenStore:
    def test_explicit_root(self, tmp_path):
        store = open_store(str(tmp_path / "s"))
        assert store is not None and store.root == tmp_path / "s"

    def test_environment_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        store = open_store()
        assert store is not None and store.root == tmp_path / "env-store"

    def test_disabled_without_configuration(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert open_store() is None
