"""Concurrency and crash-safety: the store as a multi-process shared medium.

Sharded sweeps intentionally run several processes against one store, and two
shards can race on the same ``svd`` spill key (cell ownership is disjoint but
decomposition content is not).  The contract under race is *last writer wins,
reader never sees a partial write*: after any interleaving of atomic renames
there is exactly one artifact under the key, it validates, and its payload is
one of the writers' payloads — never a torn mixture.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.store import ExperimentStore

FP = "ee" * 16
WRITES_PER_PROCESS = 40


def _hammer_puts(root: str, worker: int, barrier) -> None:
    """Repeatedly overwrite one key with a worker-identifying payload."""
    store = ExperimentStore(root)
    barrier.wait()
    for iteration in range(WRITES_PER_PROCESS):
        store.put("race/cell", FP, {"worker": worker, "iteration": iteration})


def _hammer_get_or_compute(root: str, worker: int, barrier, results) -> None:
    """The sweep-cache pattern: read the key, compute + publish on miss."""
    store = ExperimentStore(root)
    barrier.wait()
    observed = []
    for _ in range(WRITES_PER_PROCESS):
        payload = store.get("race/compute", FP)
        if payload is None:
            payload = {"worker": worker}
            store.put("race/compute", FP, payload)
        observed.append(payload["worker"])
    results.put((worker, observed))


@pytest.fixture
def mp_context():
    # fork keeps the children on the test process's sys.path (src layout).
    return multiprocessing.get_context("fork")


class TestRacingWriters:
    def test_two_processes_racing_one_key_leave_one_valid_artifact(self, tmp_path, mp_context):
        root = tmp_path / "store"
        barrier = mp_context.Barrier(2)
        workers = [
            mp_context.Process(target=_hammer_puts, args=(str(root), worker, barrier))
            for worker in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0

        store = ExperimentStore(root)
        payload = store.get("race/cell", FP)
        assert payload is not None, "racing writers must leave a readable artifact"
        assert payload["worker"] in (0, 1)
        assert payload["iteration"] == WRITES_PER_PROCESS - 1

        # Exactly one artifact file, no temporaries, and it validates through
        # the normal read path (checksum + schema + fingerprint).
        files = [p for p in root.rglob("*") if p.is_file()]
        assert len(files) == 1
        assert ".tmp-" not in files[0].name
        wrapper = json.loads(files[0].read_text())
        assert wrapper["fingerprint"] == FP

    def test_get_or_compute_race_serves_only_valid_payloads(self, tmp_path, mp_context):
        root = tmp_path / "store"
        barrier = mp_context.Barrier(2)
        results = mp_context.Queue()
        workers = [
            mp_context.Process(
                target=_hammer_get_or_compute, args=(str(root), worker, barrier, results)
            )
            for worker in range(2)
        ]
        for proc in workers:
            proc.start()
        collected = [results.get(timeout=60) for _ in workers]
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0

        # Every observation, in both processes, is one of the two computed
        # payloads — a torn read would have surfaced as a decode error (miss)
        # followed by a recompute, never as garbage.
        for _, observed in collected:
            assert set(observed) <= {0, 1}
        # Once both processes are past the first iteration the key is stable.
        store = ExperimentStore(root)
        assert store.get("race/compute", FP)["worker"] in (0, 1)


class TestCrashSafety:
    """A writer dying mid-write must never poison the key for readers."""

    def test_leftover_temporary_is_invisible_to_readers(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        target = store.path_for("k", FP)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Simulate a crash between temp-write and rename.
        (target.with_name(target.name + f".tmp-{os.getpid()}-dead")).write_text("{broken")
        assert store.get("k", FP) is None          # miss, not an error
        store.put("k", FP, {"v": 1})               # recompute path works
        assert store.get("k", FP) == {"v": 1}
        assert store.gc().kept == 1                # gc sweeps the leftover

    def test_interrupted_overwrite_keeps_the_previous_artifact(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.put("k", FP, {"v": "original"})
        target = store.path_for("k", FP)
        (target.with_name(target.name + ".tmp-1-dead")).write_text("partial")
        # The reader still sees the last complete artifact.
        assert store.get("k", FP) == {"v": "original"}
