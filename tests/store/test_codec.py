"""Typed codec round-trips for every result type the harnesses persist.

The warm-store byte-identity contract reduces to: for every stored cell type
``T`` and value ``x``, ``encode(decode(T, json_round_trip(encode(x)))) ==
encode(x)``.  These tests pin that for the real harness results (including
``Dict[int, int]`` keys, nested dataclasses, and tuple fields) and for the
corner cases of the generic decoder.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import pytest

from repro.store import decode, encode


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


def assert_codec_round_trip(result_type, value):
    payload = json_round_trip(encode(value))
    rebuilt = decode(result_type, payload)
    assert type(rebuilt) is type(value)
    assert encode(rebuilt) == encode(value)
    return rebuilt


class TestHarnessResultTypes:
    def test_table1_row(self):
        from repro.experiments.table1 import Table1Row, run_table1

        result = run_table1(
            networks=("resnet20",), array_sizes=(32, 64),
            group_counts=(1,), rank_divisors=(2,),
        )
        row = assert_codec_round_trip(Table1Row, result.rows[0])
        # Dict[int, int] keys come back as ints, not the JSON strings.
        assert set(row.cycles_with_sdk) == {32, 64}
        assert all(isinstance(key, int) for key in row.cycles_with_sdk)

    def test_fig6_panel(self):
        from repro.experiments.fig6 import Fig6Panel, run_fig6

        result = run_fig6(
            networks=("resnet20",), array_sizes=(32,),
            group_counts=(1, 2), rank_divisors=(2,), pruning_entries=(4,),
        )
        panel = assert_codec_round_trip(Fig6Panel, result.panels[0])
        assert panel.baseline.method == "baseline im2col"
        assert panel.series().keys() == result.panels[0].series().keys()

    def test_fig7_bar(self):
        from repro.experiments.fig7 import Fig7Bar, run_fig7

        result = run_fig7(networks=("resnet20",), array_sizes=(32,))
        bar = assert_codec_round_trip(Fig7Bar, result.bars[0])
        assert bar.ours_normalized == result.bars[0].ours_normalized

    def test_fig8_panel(self):
        from repro.experiments.fig8 import Fig8Panel, run_fig8

        result = run_fig8(array_sizes=(64,), bits=(2, 4), group_counts=(1,), rank_divisors=(4,))
        assert_codec_round_trip(Fig8Panel, result.panels[0])

    def test_fig9_panel(self):
        from repro.experiments.fig9 import Fig9Panel, run_fig9

        result = run_fig9(panels=(("resnet20", 64),), group_counts=(1,), rank_divisors=(2, 4))
        assert_codec_round_trip(Fig9Panel, result.panels[0])

    def test_robustness_cell(self):
        from repro.experiments.robustness import RobustnessPoint, run_robustness

        result = run_robustness(
            networks=("resnet20",), scenarios=("ideal", "typical_rram"), trials=2
        )
        rebuilt = assert_codec_round_trip(List[RobustnessPoint], result.points)
        assert all(isinstance(point, RobustnessPoint) for point in rebuilt)


@dataclass(frozen=True)
class Leaf:
    name: str
    value: float


@dataclass
class Tree:
    leaves: List[Leaf] = field(default_factory=list)
    by_size: Dict[int, Leaf] = field(default_factory=dict)
    pair: Tuple[int, str] = (0, "")
    sizes: Tuple[int, ...] = ()
    label: Optional[str] = None


class TestGenericDecoding:
    def test_nested_generics(self):
        tree = Tree(
            leaves=[Leaf("a", 1.5), Leaf("b", -2.0)],
            by_size={32: Leaf("c", 0.0), 64: Leaf("d", 1.0)},
            pair=(3, "x"),
            sizes=(32, 64, 128),
            label="deep",
        )
        rebuilt = assert_codec_round_trip(Tree, tree)
        assert rebuilt == tree
        assert isinstance(rebuilt.sizes, tuple) and isinstance(rebuilt.pair, tuple)
        assert all(isinstance(key, int) for key in rebuilt.by_size)

    def test_optional_none_survives(self):
        rebuilt = assert_codec_round_trip(Tree, Tree(label=None))
        assert rebuilt.label is None

    def test_int_json_value_promotes_to_float_field(self):
        # json.dumps(1.0) stays "1.0", but a hand-written artifact may hold 1.
        leaf = decode(Leaf, {"name": "x", "value": 1})
        assert isinstance(leaf.value, float) and leaf.value == 1.0

    def test_exact_float_round_trip(self):
        values = [0.1, 1e-300, 123456789.123456789, -0.0, 2**53 + 1.0]
        for value in values:
            assert decode(Leaf, json_round_trip(encode(Leaf("v", value)))).value == value

    def test_decode_rejects_non_mapping_for_dataclass(self):
        with pytest.raises(TypeError):
            decode(Leaf, [1, 2])

    def test_unparametrized_containers(self):
        assert decode(list, [1, 2]) == [1, 2]
        assert decode(tuple, [1, 2]) == (1, 2)
        assert decode(dict, {"a": 1}) == {"a": 1}
