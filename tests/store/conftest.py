"""Store-test isolation: undo process-global store attachments between tests.

``repro.cli.main`` and ``run_all(store=...)`` attach the store to the
process-wide decomposition cache (two-level SVD caching); left attached, a
later test would spill SVDs into a torn-down ``tmp_path``.
"""

from __future__ import annotations

import pytest

from repro.engine.cache import default_decomposition_cache


@pytest.fixture(autouse=True)
def detach_default_decomposition_store():
    yield
    default_decomposition_cache.detach_store()
