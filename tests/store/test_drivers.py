"""Tests for the pluggable store-driver layer.

Drivers isolate every filesystem primitive the store and the lease
protocol rely on (atomic writes, exclusive creates, mutation locks) so
the same protocol can run over a local directory or an NFS export.  The
``nfs`` driver replaces ``O_EXCL`` — historically unreliable on NFSv2
and on lossy mounts — with the hard-link trick, whose verdict survives a
lost RPC reply.
"""
from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from threading import Barrier

import pytest

from repro.store import ExperimentStore
from repro.store.driver import (
    DRIVER_ENV_VAR,
    LocalStoreDriver,
    NfsSafeStoreDriver,
    driver_names,
    resolve_driver,
)
from repro.store.leases import LeaseBoard


class TestResolveDriver:
    def test_default_is_local(self, monkeypatch):
        monkeypatch.delenv(DRIVER_ENV_VAR, raising=False)
        assert isinstance(resolve_driver(), LocalStoreDriver)
        assert resolve_driver().name == "local"

    def test_env_selects_the_driver(self, monkeypatch):
        monkeypatch.setenv(DRIVER_ENV_VAR, "nfs")
        assert isinstance(resolve_driver(), NfsSafeStoreDriver)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(DRIVER_ENV_VAR, "nfs")
        assert resolve_driver("local").name == "local"

    def test_instance_passthrough(self):
        driver = NfsSafeStoreDriver()
        assert resolve_driver(driver) is driver

    def test_unknown_name_lists_the_registry(self, monkeypatch):
        monkeypatch.delenv(DRIVER_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="local"):
            resolve_driver("gopherfs")

    def test_registry_names(self):
        assert set(driver_names()) >= {"local", "nfs"}


@pytest.fixture(params=["local", "nfs"])
def driver(request):
    return resolve_driver(request.param)


class TestDriverPrimitives:
    """Both drivers must satisfy the same contract."""

    def test_write_read_roundtrip(self, driver, tmp_path):
        path = tmp_path / "a" / "b.json"
        path.parent.mkdir()
        driver.write_atomic(path, b"payload")
        assert driver.read_bytes(path) == b"payload"
        assert driver.exists(path)
        assert driver.mtime(path) is not None

    def test_read_missing_is_none(self, driver, tmp_path):
        assert driver.read_bytes(tmp_path / "nope") is None
        assert driver.mtime(tmp_path / "nope") is None
        assert not driver.exists(tmp_path / "nope")

    def test_create_exclusive_single_winner(self, driver, tmp_path):
        path = tmp_path / "slot"
        assert driver.create_exclusive(path, b"first")
        assert not driver.create_exclusive(path, b"second")
        assert driver.read_bytes(path) == b"first"

    def test_replace_overwrites_in_place(self, driver, tmp_path):
        path = tmp_path / "slot"
        assert driver.create_exclusive(path, b"old")
        driver.replace(path, b"new")
        assert driver.read_bytes(path) == b"new"

    def test_unlink(self, driver, tmp_path):
        path = tmp_path / "slot"
        driver.write_atomic(path, b"x")
        assert driver.unlink(path)
        assert not driver.unlink(path)
        assert not driver.exists(path)

    def test_lock_is_exclusive_until_released(self, driver, tmp_path):
        lock = tmp_path / "shard-0.mutex"
        assert driver.acquire_lock(lock)
        assert not driver.acquire_lock(lock)
        driver.release_lock(lock)
        assert driver.acquire_lock(lock)

    def test_listdir(self, driver, tmp_path):
        (tmp_path / "one").write_text("1")
        (tmp_path / "two").write_text("2")
        names = {p.name for p in driver.listdir(tmp_path)}
        assert names == {"one", "two"}
        assert driver.listdir(tmp_path / "missing") == []


class TestNfsCreateExclusive:
    def test_no_sibling_files_left_behind(self, tmp_path):
        driver = NfsSafeStoreDriver()
        target = tmp_path / "slot"
        assert driver.create_exclusive(target, b"x")
        assert not driver.create_exclusive(target, b"y")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "slot"]
        assert leftovers == [], "the hard-link siblings must be cleaned up"

    def test_concurrent_creates_have_one_winner(self, tmp_path):
        driver = NfsSafeStoreDriver()
        target = tmp_path / "slot"
        racers = 8
        barrier = Barrier(racers)

        def create(index: int) -> bool:
            barrier.wait()
            return driver.create_exclusive(target, f"racer-{index}".encode())

        with ThreadPoolExecutor(max_workers=racers) as pool:
            wins = list(pool.map(create, range(racers)))
        assert sum(wins) == 1
        winner = wins.index(True)
        assert driver.read_bytes(target) == f"racer-{winner}".encode()
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "slot"]
        assert leftovers == []


class TestLeaseBoardOverDrivers:
    @pytest.mark.parametrize("name", ["local", "nfs"])
    def test_full_lease_lifecycle(self, tmp_path, name):
        board = LeaseBoard(tmp_path / "store", "plan", ttl=30.0, driver=name)
        assert board.claim(1, "alice")
        assert not board.claim(1, "bob")
        assert board.renew(1, "alice")
        board.mark_done(1, "alice")
        assert board.is_done(1)
        assert not board.claim(1, "bob")
        lease = json.loads(board.done_path(1).read_text())
        assert lease["owner"] == "alice"


class TestStoreOverDrivers:
    def test_store_roundtrip_with_nfs_driver(self, tmp_path):
        store = ExperimentStore(tmp_path / "store", driver="nfs")
        assert store.driver.name == "nfs"
        store.put("k", "ab" * 16, {"v": 1})
        assert store.get("k", "ab" * 16) == {"v": 1}

    def test_store_env_driver(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DRIVER_ENV_VAR, "nfs")
        store = ExperimentStore(tmp_path / "store")
        assert store.driver.name == "nfs"
