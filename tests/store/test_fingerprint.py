"""Property tests for fingerprint canonicalization (the store's key schema).

The fingerprint is the single point of truth for cache correctness: if two
configurations that mean the same thing hash differently the store silently
loses hits, and if two *different* configurations collide the store silently
serves wrong results.  Hypothesis drives the canonicalization over arbitrary
nested configurations; a subprocess round-trip pins cross-process stability
(fingerprints must not depend on ``PYTHONHASHSEED``, dict iteration order or
interpreter state); a golden digest pins the schema itself.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import canonical_json, canonicalize, experiment_fingerprint
from repro.store.fingerprint import SALT_ENV_VAR

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# ----------------------------------------------------------------------
# Strategies: arbitrary nested configuration values
# ----------------------------------------------------------------------
scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8)
)
config_values = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=5), children, max_size=3),
    max_leaves=10,
)
configs = st.dictionaries(st.text(max_size=6), config_values, max_size=5)


def shuffled_dict(mapping, rng_seed: int):
    """The same mapping with a different (deterministic) insertion order."""
    keys = list(mapping)
    order = np.random.default_rng(rng_seed).permutation(len(keys))
    out = {}
    for index in order:
        key = keys[int(index)]
        value = mapping[key]
        out[key] = shuffled_dict(value, rng_seed + 1) if isinstance(value, dict) else value
    return out


class TestDictOrderInsensitivity:
    @given(config=configs)
    @settings(max_examples=100, deadline=None)
    def test_insertion_order_never_changes_the_fingerprint(self, config):
        reordered = shuffled_dict(config, rng_seed=7)
        assert experiment_fingerprint("t", config) == experiment_fingerprint("t", reordered)

    def test_nested_reorder(self):
        a = {"outer": {"x": 1, "y": 2.5}, "z": [1, 2]}
        b = {"z": [1, 2], "outer": {"y": 2.5, "x": 1}}
        assert experiment_fingerprint("t", a) == experiment_fingerprint("t", b)


class TestFloatReprInsensitivity:
    """Digests hash IEEE-754 values, never their decimal text formatting."""

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_repr_roundtrip_is_identity(self, value):
        assert experiment_fingerprint("t", {"x": value}) == experiment_fingerprint(
            "t", {"x": float(repr(value))}
        )

    @given(value=st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=50, deadline=None)
    def test_numpy_scalars_hash_like_python_scalars(self, value):
        assert experiment_fingerprint("t", {"x": float(value)}) == experiment_fingerprint(
            "t", {"x": np.float64(value)}
        )

    @given(value=st.integers(min_value=-(10**9), max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_numpy_ints_hash_like_python_ints(self, value):
        assert experiment_fingerprint("t", {"x": value}) == experiment_fingerprint(
            "t", {"x": np.int64(value)}
        )

    def test_int_and_equal_float_are_distinct_configs(self):
        # 1 and 1.0 select different code paths in several harness kwargs, so
        # the type tag is part of the identity.
        assert experiment_fingerprint("t", {"x": 1}) != experiment_fingerprint(
            "t", {"x": 1.0}
        )

    def test_tuple_and_list_canonicalize_identically(self):
        assert experiment_fingerprint("t", {"x": (1, 2)}) == experiment_fingerprint(
            "t", {"x": [1, 2]}
        )


class TestDefaultsInsensitivity:
    @given(config=configs, defaults=configs)
    @settings(max_examples=100, deadline=None)
    def test_omitting_a_default_equals_passing_it(self, config, defaults):
        merged = dict(defaults)
        merged.update(config)
        assert experiment_fingerprint(
            "t", config, defaults=defaults
        ) == experiment_fingerprint("t", merged, defaults=defaults)

    def test_overriding_a_default_changes_the_fingerprint(self):
        defaults = {"trials": 8}
        assert experiment_fingerprint(
            "t", {"trials": 16}, defaults=defaults
        ) != experiment_fingerprint("t", {}, defaults=defaults)


class TestNoCollisions:
    @given(a=configs, b=configs)
    @settings(max_examples=200, deadline=None)
    def test_distinct_canonical_configs_never_collide(self, a, b):
        if canonical_json(a) == canonical_json(b):
            assert experiment_fingerprint("t", a) == experiment_fingerprint("t", b)
        else:
            assert experiment_fingerprint("t", a) != experiment_fingerprint("t", b)

    @given(config=configs)
    @settings(max_examples=50, deadline=None)
    def test_kind_partitions_the_keyspace(self, config):
        assert experiment_fingerprint("table1/row", config) != experiment_fingerprint(
            "fig6/panel", config
        )

    @given(config=configs)
    @settings(max_examples=50, deadline=None)
    def test_salt_partitions_the_keyspace(self, config):
        assert experiment_fingerprint("t", config, salt="v1") != experiment_fingerprint(
            "t", config, salt="v2"
        )


class TestCanonicalizeCorners:
    def test_bool_is_not_an_int(self):
        assert canonicalize(True) != canonicalize(1)

    def test_uncanonicalizable_value_raises(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_dataclasses_canonicalize_by_field(self):
        from repro.imc.energy import EnergyModel

        model = EnergyModel()
        assert canonical_json({"p": model.peripherals}) == canonical_json(
            {"p": EnergyModel().peripherals}
        )

    def test_salt_env_override(self, monkeypatch):
        base = experiment_fingerprint("t", {"a": 1})
        monkeypatch.setenv(SALT_ENV_VAR, "forced-cold")
        assert experiment_fingerprint("t", {"a": 1}) != base


class TestCrossProcessStability:
    """Fingerprints are the store's shared-medium contract between processes."""

    CONFIG_CODE = (
        "from repro.store import experiment_fingerprint;"
        "print(experiment_fingerprint('proc', "
        "{'network': 'wrn16_4', 'trials': 8, 'noise': 0.1, "
        "'sizes': [32, 64], 'nested': {'b': False, 'a': None}}, salt='pin'))"
    )

    def _subprocess_fingerprint(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hashseed
        output = subprocess.run(
            [sys.executable, "-c", self.CONFIG_CODE],
            capture_output=True, text=True, check=True, env=env,
        )
        return output.stdout.strip()

    def test_fingerprints_stable_across_processes_and_hash_seeds(self):
        local = experiment_fingerprint(
            "proc",
            {"network": "wrn16_4", "trials": 8, "noise": 0.1,
             "sizes": [32, 64], "nested": {"b": False, "a": None}},
            salt="pin",
        )
        assert self._subprocess_fingerprint("0") == local
        assert self._subprocess_fingerprint("424242") == local

    def test_golden_digest_pins_the_key_schema(self):
        # Changing canonicalization silently invalidates (or worse, aliases)
        # every existing store; this digest makes such a change loud.  If you
        # changed the schema on purpose, bump CODE_VERSION_SALT and update me.
        assert (
            experiment_fingerprint(
                "golden", {"a": 1, "b": 2.5, "c": [True, None, "s"]}, salt="pin"
            )
            == "6a98baaad0ed355be2483c190ec9e83d"
        )
