"""Cold-vs-warm integration: the full suite through ``main()`` twice.

The store's headline contract: a warm rerun of ``repro report --json`` (i)
computes nothing — every artifact in the store is untouched byte-for-byte —
and (ii) emits byte-identical text and JSON to the cold run.  The sharded
variant must compose: shards 1..N into one store, then an un-sharded warm
assembly, equals a direct cold run with no store at all.

The sweeps are restricted (``--arrays 32 --trials 2``) to keep the suite's
runtime in check; the full-sweep equivalence is pinned by the golden-report
warm pass (``tests/golden``) and measured by ``benchmarks/kernel_timings.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cli import main

REPORT_ARGS = ["report", "--arrays", "32", "--trials", "2"]


def run_report(tmp_path: Path, store: Path, tag: str, capsys, extra=()):
    target = tmp_path / f"{tag}.json"
    start = time.perf_counter()
    exit_code = main(["--store", str(store), *REPORT_ARGS, *extra, "--json", str(target)])
    elapsed = time.perf_counter() - start
    text = capsys.readouterr().out
    assert exit_code == 0
    return target.read_bytes(), text, elapsed


def store_inventory(store: Path):
    """Every artifact with its exact (size, mtime_ns) — recomputes are visible."""
    return {
        str(path.relative_to(store)): (path.stat().st_size, path.stat().st_mtime_ns)
        for path in sorted(store.rglob("*"))
        if path.is_file()
    }


class TestColdVersusWarm:
    def test_warm_run_hits_the_store_and_is_byte_identical(self, tmp_path, capsys):
        store = tmp_path / "store"
        cold_json, cold_text, cold_time = run_report(tmp_path, store, "cold", capsys)
        inventory = store_inventory(store)
        assert inventory, "cold run must materialize artifacts"

        warm_json, warm_text, warm_time = run_report(tmp_path, store, "warm", capsys)
        assert warm_json == cold_json
        assert warm_text == cold_text
        # Nothing was recomputed: every artifact byte and timestamp is untouched.
        assert store_inventory(store) == inventory
        # Not a 5x assertion (CI timing is noisy; the benchmark emitter pins
        # the ratio) — but a warm assembly must at least beat the cold sweep.
        assert warm_time < cold_time

    def test_corrupt_artifact_is_recomputed_not_served(self, tmp_path, capsys):
        store = tmp_path / "store"
        cold_json, _, _ = run_report(tmp_path, store, "cold", capsys)
        victims = [path for path in store.rglob("*.json") if "table1" in str(path)]
        victim = victims[0]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])

        warm_json, _, _ = run_report(tmp_path, store, "warm", capsys)
        assert warm_json == cold_json
        # The victim was recomputed and re-persisted, valid again.
        wrapper = json.loads(victim.read_text())
        assert wrapper["payload"]


class TestShardedExecution:
    @pytest.fixture(scope="class")
    def direct_cold_json(self, tmp_path_factory):
        """A storeless cold run — the reference the sharded path must match."""
        target = tmp_path_factory.mktemp("direct") / "direct.json"
        assert main([*REPORT_ARGS, "--json", str(target)]) == 0
        return target.read_bytes()

    def test_shards_compose_into_a_byte_identical_report(
        self, tmp_path, capsys, direct_cold_json
    ):
        store = tmp_path / "store"
        for shard in ("1/2", "2/2"):
            assert main(["--store", str(store), *REPORT_ARGS, "--shard", shard]) == 0
            summary = capsys.readouterr().out
            assert f"shard {shard}" in summary

        warm_json, _, _ = run_report(tmp_path, store, "assembled", capsys)
        assert warm_json == direct_cold_json

    def test_interrupted_shard_resumes_without_recomputation(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["--store", str(store), *REPORT_ARGS, "--shard", "1/2"]) == 0
        capsys.readouterr()
        inventory = store_inventory(store)

        # Simulate an interruption that lost one completed cell.
        victim = sorted(
            path for path in store.rglob("*.json")
            if "robustness" in str(path) or "table1" in str(path)
        )[0]
        victim.unlink()

        assert main(["--store", str(store), *REPORT_ARGS, "--shard", "1/2"]) == 0
        second = capsys.readouterr().out
        # Exactly the lost cell was recomputed; every other artifact's bytes
        # and timestamps are untouched.
        assert "shard total: computed 1, resumed" in second
        after = store_inventory(store)
        recomputed = {
            key for key in after if key not in inventory or after[key] != inventory[key]
        }
        assert recomputed == {str(victim.relative_to(store))}

    def test_shard_requires_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main([*REPORT_ARGS, "--shard", "1/2"])
        capsys.readouterr()

    def test_invalid_shard_spec_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--store", str(tmp_path / "s"), *REPORT_ARGS, "--shard", "3/2"])
        capsys.readouterr()

    def test_shard_rejects_json_instead_of_silently_skipping_it(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        with pytest.raises(SystemExit):
            main([
                "--store", str(tmp_path / "s"), *REPORT_ARGS,
                "--shard", "1/2", "--json", str(target),
            ])
        capsys.readouterr()
        assert not target.exists()
