"""Core imports must not pull in optional dependencies at module scope.

The ``pip install .`` contract: a no-extras install runs every core entry
point with numpy alone.  That only holds if importing the package — and the
modules that *gate* optional features, like the backend registry and the
server package — never executes ``import numba`` / ``import fastapi`` at
module scope.  Each case runs in a fresh interpreter so this suite's own
imports cannot mask a violation, and asserts against ``sys.modules`` so a
lazy import hidden behind a function stays legal while a module-scope one
fails loudly.  CI's no-extras smoke job runs the same check from a clean
venv where the optional packages are not even installed.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

OPTIONAL = ("numba", "fastapi", "uvicorn")


def _run_fresh(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )

#: Module -> the optional deps importing it must NOT load.  repro.server is
#: included deliberately: it must be importable (for the availability error
#: message) without fastapi, which only loads when an app is constructed.
CASES = [
    ("repro", OPTIONAL),
    ("repro.backend", OPTIONAL),
    ("repro.cli", OPTIONAL),
    ("repro.engine", OPTIONAL),
    ("repro.server", OPTIONAL),
]


@pytest.mark.parametrize("module,forbidden", CASES, ids=[c[0] for c in CASES])
def test_import_does_not_load_optional_deps(module, forbidden):
    script = (
        "import sys\n"
        f"import {module}\n"
        f"loaded = [name for name in {forbidden!r}\n"
        "          if any(m == name or m.startswith(name + '.') for m in sys.modules)]\n"
        "assert not loaded, (\n"
        f"    f'importing {module} pulled in optional deps at module scope: {{loaded}}')\n"
    )
    result = _run_fresh(script)
    assert result.returncode == 0, result.stderr


def test_backend_listing_works_in_fresh_interpreter():
    """`repro backends` plumbing — registry + availability — with no extras."""
    script = (
        "from repro.backend import backend_availability, backend_names\n"
        "names = backend_names()\n"
        "assert 'compiled' in names, names\n"
        "availability = backend_availability()\n"
        "assert set(availability) == set(names)\n"
    )
    result = _run_fresh(script)
    assert result.returncode == 0, result.stderr
