"""Tests for the hardware scenario presets and registry."""

from __future__ import annotations

import pytest

from repro.imc.peripherals import CellSpec, PeripheralSuite
from repro.mapping.geometry import ArrayDims
from repro.scenarios import (
    FAULTY,
    IDEAL,
    TYPICAL_RRAM,
    WORST_CASE_RRAM,
    HardwareScenario,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_registry,
)
from repro.scenarios.presets import _REGISTRY


class TestRegistry:
    def test_all_presets_registered_in_order(self):
        assert scenario_names() == (
            "ideal",
            "typical_rram",
            "worst_case_rram",
            "pcm_like",
            "faulty",
        )

    def test_get_scenario_roundtrip(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="typical_rram"):
            get_scenario("does_not_exist")

    def test_registry_is_a_copy(self):
        registry = scenario_registry()
        registry.pop("ideal")
        assert "ideal" in scenario_names()

    def test_register_custom_scenario(self):
        custom = HardwareScenario(name="_test_custom", description="", conductance_sigma=0.2)
        try:
            register_scenario(custom)
            assert get_scenario("_test_custom") is custom
        finally:
            _REGISTRY.pop("_test_custom", None)


class TestPresetContents:
    def test_ideal_is_ideal(self):
        assert IDEAL.is_ideal
        assert IDEAL.noise_model().is_ideal
        assert IDEAL.input_bits is None and IDEAL.output_bits is None

    def test_noisy_presets_are_not_ideal(self):
        for scenario in (TYPICAL_RRAM, WORST_CASE_RRAM, FAULTY):
            assert not scenario.is_ideal

    def test_severity_ordering(self):
        """The worst-case corner dominates the typical corner on every axis."""
        assert WORST_CASE_RRAM.conductance_sigma > TYPICAL_RRAM.conductance_sigma
        assert WORST_CASE_RRAM.stuck_at_rate > TYPICAL_RRAM.stuck_at_rate
        assert WORST_CASE_RRAM.ir_drop_severity > TYPICAL_RRAM.ir_drop_severity
        assert WORST_CASE_RRAM.conductance_levels < TYPICAL_RRAM.conductance_levels
        assert FAULTY.stuck_at_rate > TYPICAL_RRAM.stuck_at_rate

    def test_noise_model_carries_parameters(self):
        model = TYPICAL_RRAM.noise_model(seed=7)
        assert model.conductance_sigma == TYPICAL_RRAM.conductance_sigma
        assert model.stuck_at_rate == TYPICAL_RRAM.stuck_at_rate
        assert model.ir_drop_severity == TYPICAL_RRAM.ir_drop_severity
        assert model.seed == 7


class TestScenarioBuilders:
    def test_cell_overrides_resolution_and_range_only(self):
        base = CellSpec(read_energy_pj=0.5, write_energy_pj=3.0)
        cell = get_scenario("pcm_like").cell(base)
        assert cell.conductance_levels == 32
        assert cell.g_min == pytest.approx(5e-6)
        assert cell.g_max == pytest.approx(8e-5)
        assert cell.read_energy_pj == 0.5  # energies keep the base values
        assert cell.write_energy_pj == 3.0

    def test_peripherals_substitute_cell(self):
        suite = TYPICAL_RRAM.peripherals()
        assert suite.cell.conductance_levels == TYPICAL_RRAM.conductance_levels
        assert suite.adc == PeripheralSuite().adc  # other components untouched

    def test_context_wiring(self):
        ctx = WORST_CASE_RRAM.context(ArrayDims.square(64), seed=3)
        assert ctx.seed == 3
        assert ctx.engine == "batched"
        assert ctx.input_bits == WORST_CASE_RRAM.input_bits
        assert ctx.output_bits == WORST_CASE_RRAM.output_bits
        assert ctx.noise == WORST_CASE_RRAM.noise_model(3)
        assert ctx.peripherals.cell.conductance_levels == 16

    def test_context_runs_a_plan(self, rng):
        ctx = TYPICAL_RRAM.context(ArrayDims.square(32), seed=1)
        weight = rng.standard_normal((16, 32))
        result = ctx.dense_monte_carlo_plan(weight, trials=2).run(rng.standard_normal((4, 32)))
        assert result.outputs.shape == (2, 4, 16)
        assert result.mean_relative_error > 0

    def test_error_ordering_across_corners(self, rng):
        """Worse corners produce larger output errors on the same layer."""
        weight = rng.standard_normal((24, 48))
        inputs = rng.standard_normal((8, 48))
        errors = {}
        for name in ("ideal", "typical_rram", "worst_case_rram"):
            ctx = get_scenario(name).context(ArrayDims.square(32), seed=2)
            errors[name] = ctx.dense_monte_carlo_plan(weight, trials=3).run(inputs).mean_relative_error
        assert errors["ideal"] < errors["typical_rram"] < errors["worst_case_rram"]


class TestValidation:
    def test_invalid_noise_parameters_rejected(self):
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", conductance_sigma=-0.1)
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", stuck_at_rate=1.5)
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", ir_drop_severity=1.0)

    def test_invalid_cell_parameters_rejected(self):
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", conductance_levels=1)
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", g_min=1e-4, g_max=1e-6)

    def test_invalid_converter_bits_rejected(self):
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", input_bits=0)
        with pytest.raises(ValueError):
            HardwareScenario(name="bad", description="", output_bits=-2)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            HardwareScenario(name="", description="x")
