"""Tests for the ``python -m repro`` command-line interface.

Only the fast subcommands are exercised (Table I restricted sweeps are still a
second or two); the heavyweight ``report`` command is covered by the benchmark
suite via the underlying ``run_all`` harness.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig6", "fig7", "fig8", "fig9", "report", "compare"):
            args = parser.parse_args([command] if command != "compare" else ["compare"])
            assert args.command == command

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.network == "resnet20" and args.array == 64

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--network", "vgg"])


class TestExecution:
    def test_compare_command_prints_table(self, capsys):
        exit_code = main(["compare", "--network", "resnet20", "--array", "64"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "im2col" in captured and "ours" in captured and "speedup" in captured

    def test_fig8_command(self, capsys):
        exit_code = main(["fig8"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 8" in captured and "DoReFa" in captured

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "compare.txt"
        exit_code = main(["--output", str(target), "compare"])
        capsys.readouterr()
        assert exit_code == 0
        assert target.exists()
        assert "speedup" in target.read_text()
