"""Tests for the ``python -m repro`` command-line interface.

The fast subcommands are exercised directly; the heavyweight ``report``
command is run end to end through ``main()`` with a restricted Fig. 6 sweep
and a small robustness trial count so its ``--arrays``/``--jobs``/``--json``
plumbing stays covered without dominating the suite's runtime.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig6", "fig7", "fig8", "fig9", "report",
                        "robustness", "layer_families", "compare"):
            args = parser.parse_args([command] if command != "compare" else ["compare"])
            assert args.command == command

    def test_robustness_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.scenarios is None
        assert args.trials == 8 and args.jobs == 1 and args.array == 64

    def test_robustness_invalid_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--scenarios", "not_a_scenario"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.network == "resnet20" and args.array == 64

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--network", "vgg"])


class TestExecution:
    def test_compare_command_prints_table(self, capsys):
        exit_code = main(["compare", "--network", "resnet20", "--array", "64"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "im2col" in captured and "ours" in captured and "speedup" in captured

    def test_fig8_command(self, capsys):
        exit_code = main(["fig8"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 8" in captured and "DoReFa" in captured

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "compare.txt"
        exit_code = main(["--output", str(target), "compare"])
        capsys.readouterr()
        assert exit_code == 0
        assert target.exists()
        assert "speedup" in target.read_text()

    def test_robustness_command_prints_tables(self, capsys):
        exit_code = main(
            [
                "robustness",
                "--trials", "2",
                "--networks", "resnet20",
                "--scenarios", "ideal", "typical_rram",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Robustness — resnet20" in captured
        assert "typical_rram" in captured
        assert "group_lowrank" in captured

    def test_robustness_jobs_and_json(self, tmp_path, capsys):
        target = tmp_path / "robustness.json"
        exit_code = main(
            [
                "robustness",
                "--trials", "2",
                "--networks", "resnet20",
                "--scenarios", "ideal", "faulty",
                "--jobs", "2",
                "--json", str(target),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(target.read_text())
        assert document["trials"] == 2
        assert document["scenarios"] == ["ideal", "faulty"]
        assert len(document["points"]) == 2 * 3  # scenarios × mappings

    def test_layer_families_command_prints_table(self, capsys):
        exit_code = main(
            [
                "layer_families",
                "--trials", "2",
                "--scenarios", "ideal", "typical_rram",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Layer families — mapping efficiency" in captured
        assert "depthwise" in captured and "attention" in captured

    def test_layer_families_families_and_json(self, tmp_path, capsys):
        target = tmp_path / "layer_families.json"
        exit_code = main(
            [
                "layer_families",
                "--trials", "2",
                "--families", "conv", "depthwise",
                "--scenarios", "ideal", "faulty",
                "--json", str(target),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(target.read_text())
        assert document["trials"] == 2
        assert document["families"] == ["conv", "depthwise"]
        assert len(document["points"]) == 2 * 2  # families × scenarios

    def test_report_end_to_end_with_arrays_jobs_json(self, tmp_path, capsys):
        """`report --arrays/--jobs/--json` through main(), restricted to stay fast."""
        target = tmp_path / "report.json"
        exit_code = main(
            [
                "report",
                "--arrays", "32",
                "--jobs", "2",
                "--trials", "2",
                "--json", str(target),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Reproduction report" in captured
        assert "Robustness —" in captured
        document = json.loads(target.read_text())
        assert set(document["experiments"]) == {
            "table1", "fig6", "fig7", "fig8", "fig9", "robustness", "layer_families",
        }
        assert document["headline"]
        # --arrays restricted the Fig. 6 sweep to the requested sizes.
        panels = document["experiments"]["fig6"]["result"]["panels"]
        assert {panel["array_size"] for panel in panels} == {32}


class TestStoreCli:
    """The persistent-store surface: --store plumbing and the store subcommand."""

    def test_store_parser_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.store == "" and args.shard == ""

    def test_store_action_choices(self):
        for action in ("ls", "gc", "clear"):
            args = build_parser().parse_args(["--store", "/tmp/s", "store", action])
            assert args.command == "store" and args.action == action
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--store", "/tmp/s", "store", "nuke"])

    def test_store_command_requires_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main(["store", "ls"])
        capsys.readouterr()

    def test_store_ls_gc_clear_round_trip(self, tmp_path, capsys):
        from repro.engine.cache import default_decomposition_cache

        store_dir = str(tmp_path / "store")
        try:
            assert main(["--store", store_dir, "fig9"]) == 0
            capsys.readouterr()

            assert main(["--store", store_dir, "store", "ls"]) == 0
            listing = capsys.readouterr().out
            assert "fig9/panel" in listing and "artifacts" in listing

            assert main(["--store", store_dir, "store", "gc"]) == 0
            assert "removed 0" in capsys.readouterr().out

            assert main(["--store", store_dir, "store", "clear"]) == 0
            assert "cleared" in capsys.readouterr().out

            assert main(["--store", store_dir, "store", "ls"]) == 0
            assert "0 artifacts" in capsys.readouterr().out
        finally:
            default_decomposition_cache.detach_store()

    def test_store_gc_reports_pruned_heartbeats(self, tmp_path, capsys):
        import json
        import time

        from repro.store import LeaseBoard

        store_dir = tmp_path / "store"
        board = LeaseBoard(store_dir, "crashed-run", ttl=30.0)
        board.beat("worker-0")
        record_path = board.heartbeat_path("worker-0")
        record = json.loads(record_path.read_text())
        record["beat"] = time.time() - 3600.0
        record_path.write_text(json.dumps(record))

        assert main(["--store", str(store_dir), "store", "gc"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale worker heartbeats" in out

    def test_store_env_var_is_the_default(self, tmp_path, capsys, monkeypatch):
        from repro.engine.cache import default_decomposition_cache

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        try:
            assert main(["fig9"]) == 0
            capsys.readouterr()
            assert (tmp_path / "env-store").exists()
            assert main(["store", "ls"]) == 0
            assert "fig9/panel" in capsys.readouterr().out
        finally:
            default_decomposition_cache.detach_store()

    def test_single_figure_commands_reuse_the_store(self, tmp_path, capsys):
        from repro.engine.cache import default_decomposition_cache

        store_dir = str(tmp_path / "store")
        try:
            assert main(["--store", store_dir, "fig9"]) == 0
            first = capsys.readouterr().out
            mtimes = {
                p: p.stat().st_mtime_ns for p in (tmp_path / "store").rglob("*.json")
            }
            assert main(["--store", store_dir, "fig9"]) == 0
            second = capsys.readouterr().out
            assert second == first
            assert {
                p: p.stat().st_mtime_ns for p in (tmp_path / "store").rglob("*.json")
            } == mtimes
        finally:
            default_decomposition_cache.detach_store()


class TestBackendsCli:
    """``repro backends``: the availability listing and --backend failures."""

    def test_backends_lists_every_registered_backend(self, capsys):
        exit_code = main(["backends"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in ("numpy64", "numpy32", "threaded", "compiled"):
            assert name in out
        assert "registered execution backends" in out
        assert "bit-identical" in out and "tolerance envelope" in out

    def test_backends_reports_unavailable_with_reason(self, capsys, without_numba):
        exit_code = main(["backends"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "unavailable: " in out and "numba" in out

    def test_backends_survives_a_broken_selected_backend(self, capsys, monkeypatch, without_numba):
        """The listing is the diagnostic tool, so it must work even when the
        environment selects the very backend that cannot load."""
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        exit_code = main(["backends"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "(default: compiled)" in out

    def test_backends_output_file(self, tmp_path, capsys):
        target = tmp_path / "backends.txt"
        exit_code = main(["--output", str(target), "backends"])
        capsys.readouterr()
        assert exit_code == 0
        assert "compiled" in target.read_text()

    def test_unavailable_backend_flag_rejected_with_hint(self, capsys, without_numba):
        with pytest.raises(SystemExit):
            main(["--backend", "compiled", "table1"])
        err = capsys.readouterr().err
        assert "unavailable" in err and "repro[compiled]" in err

    def test_unavailable_env_backend_rejected_with_hint(self, capsys, monkeypatch, without_numba):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        with pytest.raises(SystemExit):
            main(["table1"])
        err = capsys.readouterr().err
        assert "repro[compiled]" in err

    def test_compiled_backend_parses(self):
        assert build_parser().parse_args(["--backend", "compiled", "table1"]).backend == "compiled"


class TestWorkersCli:
    """The global --workers flag: validation, placement, shard interplay."""

    def test_workers_accepted_globally_and_after_subcommand(self):
        parser = build_parser()
        assert parser.parse_args(["--workers", "4", "report"]).workers == 4
        assert parser.parse_args(["report", "--workers", "4"]).workers == 4
        # The subcommand-position flag must not clobber the global one.
        assert parser.parse_args(["--workers", "4", "robustness"]).workers == 4

    def test_workers_zero_rejected_eagerly(self, capsys):
        with pytest.raises(SystemExit):
            main(["--workers", "0", "table1"])
        assert ">= 1" in capsys.readouterr().err

    def test_invalid_env_workers_rejected_eagerly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(SystemExit):
            main(["table1"])
        assert "REPRO_WORKERS" in capsys.readouterr().err

    def test_shard_with_workers_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "--store", str(tmp_path / "s"), "--workers", "2",
                "report", "--shard", "1/2",
            ])
        assert "--workers" in capsys.readouterr().err


class TestWorkersStatusCli:
    """End-to-end coverage of ``repro workers status``."""

    def _seed_namespace(self, store_dir):
        from repro.store.leases import LeaseBoard

        board = LeaseBoard(store_dir, "report", ttl=300.0)
        board.write_plan({
            "names": ["fig6", "fig7"],
            "nshards": 4,
            "backend": "numpy",
            "workers": 2,
            "lease_ttl": 300.0,
            "driver": "local",
        })
        assert board.claim(0, "worker-0")
        assert board.claim(2, "worker-1")
        board.mark_done(1, "worker-0")
        board.beat("worker-0", shards=[1], computed=3, stolen=0)
        board.beat("worker-1", shards=[], computed=0, stolen=1)
        return board

    def test_status_renders_leases_heartbeats_and_progress(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        self._seed_namespace(store_dir)
        assert main(["--store", store_dir, "workers", "status"]) == 0
        out = capsys.readouterr().out
        assert "namespace report" in out
        assert "plan:" in out and "backend numpy" in out and "workers 2" in out
        assert "shard   0" in out and "worker-0" in out
        assert "shard   2" in out and "worker-1" in out
        assert "1/4 shards done" in out
        assert "heartbeat" in out

    def test_status_namespace_filter(self, tmp_path, capsys):
        from repro.store.leases import LeaseBoard

        store_dir = str(tmp_path / "store")
        self._seed_namespace(store_dir)
        other = LeaseBoard(store_dir, "fig9", ttl=300.0)
        assert other.claim(0, "solo")
        assert main(["--store", store_dir, "workers", "status", "--namespace", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "namespace fig9" in out
        assert "namespace report" not in out

    def test_status_with_no_lease_state(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["--store", store_dir, "workers", "status"]) == 0
        assert "no active lease namespaces" in capsys.readouterr().out

    def test_status_requires_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main(["workers", "status"])
        assert "--store" in capsys.readouterr().err
