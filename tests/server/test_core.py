"""ServerCore routing, job lifecycle, rate limiting and artifact serving.

Everything here drives :meth:`ServerCore.handle` directly — no sockets, no
framework — which is the point of the framework-agnostic core: the full
endpoint surface is testable in dependency-free environments.
"""

from __future__ import annotations

import json
import time

import pytest

import repro.server.queue as queue_module
from repro.engine.cache import default_decomposition_cache
from repro.server import JobState, RateLimiter, ServerConfig, ServerCore
from repro.store import ExperimentStore, LeaseBoard


@pytest.fixture(autouse=True)
def detach_store_after():
    yield
    default_decomposition_cache.detach_store()


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "store")


@pytest.fixture
def config():
    # workers=1 keeps unit-level jobs in-process; rate limiting off by
    # default (the dedicated tests below bring their own limiter).
    return ServerConfig(job_workers=1, rate_limit=0)


@pytest.fixture
def core(store, config):
    core = ServerCore(store, config)
    yield core
    core.queue.close(wait=True)


def decode(response):
    return json.loads(response.body.decode("utf-8"))


def wait_done(core, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = core.queue.get(job_id)
        if job.state in (JobState.DONE, JobState.FAILED):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestRouting:
    def test_healthz_reports_store_and_job_counts(self, core):
        response = core.handle("GET", "/healthz")
        assert response.status == 200
        document = decode(response)
        assert document["status"] == "ok"
        assert document["jobs"] == {"queued": 0, "running": 0, "done": 0, "failed": 0}

    def test_unknown_route_is_a_json_404(self, core):
        response = core.handle("GET", "/nope")
        assert response.status == 404
        assert "no route" in decode(response)["error"]

    def test_wrong_method_is_a_404(self, core):
        assert core.handle("POST", "/healthz").status == 404
        assert core.handle("GET", "/sweeps").status == 404

    def test_invalid_json_body_is_a_400(self, core):
        response = core.handle("POST", "/sweeps", b"{not json")
        assert response.status == 400
        assert "not valid JSON" in decode(response)["error"]

    def test_invalid_spec_is_a_400_with_the_validation_message(self, core):
        response = core.handle("POST", "/sweeps", b'{"experiments": ["nope"]}')
        assert response.status == 400
        assert "unknown experiment" in decode(response)["error"]

    def test_oversized_body_is_rejected(self, core):
        response = core.handle("POST", "/sweeps", b" " * (65 * 1024))
        assert response.status == 413

    def test_unavailable_backend_is_a_400_with_the_install_hint(self, core, without_numba):
        """A sweep naming an uninstalled optional backend is a client error
        carrying the pip extra — never a job accepted only to fail later."""
        response = core.handle("POST", "/sweeps", b'{"backend": "compiled"}')
        assert response.status == 400
        error = decode(response)["error"]
        assert "unavailable" in error and "repro[compiled]" in error
        document = decode(core.handle("GET", "/healthz"))
        assert document["jobs"]["queued"] == 0 and document["jobs"]["running"] == 0

    def test_unknown_job_is_a_404(self, core):
        assert core.handle("GET", "/jobs/deadbeef").status == 404
        assert core.handle("GET", "/jobs/deadbeef/report").status == 404


class TestJobLifecycle:
    SPEC = b'{"experiments": ["table1"], "workers": 1}'

    def test_post_runs_the_job_and_serves_the_report(self, core):
        response = core.handle("POST", "/sweeps", self.SPEC)
        assert response.status == 202
        document = decode(response)
        job_id = document["job"]
        assert document["deduplicated"] is False
        wait_done(core, job_id)
        status = decode(core.handle("GET", f"/jobs/{job_id}"))
        assert status["status"] == "done"
        assert status["launches"] == 1
        report = core.handle("GET", f"/jobs/{job_id}/report")
        assert report.status == 200
        body = json.loads(report.body.decode("utf-8"))
        assert "table1" in body["experiments"]

    def test_duplicate_post_dedupes_to_the_same_job(self, core):
        first = decode(core.handle("POST", "/sweeps", self.SPEC))
        wait_done(core, first["job"])
        second = core.handle("POST", "/sweeps", self.SPEC)
        assert second.status == 200
        document = decode(second)
        assert document["job"] == first["job"]
        assert document["deduplicated"] is True
        assert document["launches"] == 1

    def test_report_before_completion_is_a_409(self, core, store, config):
        # A hand-planted queued job: the report endpoint must refuse, not 500.
        from repro.server.schemas import parse_sweep_spec, spec_fingerprint
        from repro.server.queue import Job

        spec = parse_sweep_spec({"experiments": ["table1"]}, config)
        job = Job(
            id=spec_fingerprint(spec), spec=spec, state=JobState.QUEUED, created=0.0
        )
        core.queue._jobs[job.id] = job
        response = core.handle("GET", f"/jobs/{job.id}/report")
        assert response.status == 409
        assert "poll" in decode(response)["error"]

    def test_failed_job_surfaces_the_error_and_relaunches_on_resubmit(
        self, core, monkeypatch
    ):
        calls = []

        def explode(spec, store):
            calls.append(spec)
            raise RuntimeError("boom")

        # _run resolves execute_sweep as a queue-module global at call time,
        # so patching the module attribute reroutes every launch.
        monkeypatch.setattr(queue_module, "execute_sweep", explode)
        document = decode(core.handle("POST", "/sweeps", self.SPEC))
        job = wait_done(core, document["job"])
        assert job.state is JobState.FAILED
        assert "boom" in job.error
        assert core.handle("GET", f"/jobs/{job.id}/report").status == 409
        # Resubmitting a failed spec relaunches instead of caching the fault.
        retry = decode(core.handle("POST", "/sweeps", self.SPEC))
        assert retry["job"] == job.id
        wait_done(core, job.id)
        assert len(calls) == 2

    def test_restarted_service_recognizes_a_stored_report(self, store, config):
        core = ServerCore(store, config)
        try:
            document = decode(core.handle("POST", "/sweeps", self.SPEC))
            wait_done(core, document["job"])
        finally:
            core.queue.close(wait=True)
        reborn = ServerCore(store, config)
        try:
            again = decode(reborn.handle("POST", "/sweeps", self.SPEC))
            assert again["job"] == document["job"]
            assert again["status"] == "done"
            assert again["launches"] == 0  # never launched: the store had it
            report = reborn.handle("GET", f"/jobs/{document['job']}/report")
            assert report.status == 200
        finally:
            reborn.queue.close(wait=True)


class TestRateLimit:
    def test_third_burst_request_is_a_429_with_retry_after(self, store):
        config = ServerConfig(job_workers=1, rate_limit=60, rate_burst=2)
        clock = [1000.0]
        limiter = RateLimiter(60, 2, clock=lambda: clock[0])
        core = ServerCore(store, config, limiter=limiter)
        try:
            # Invalid bodies still spend tokens (cheap rejection is the point),
            # so no actual sweep ever launches in this test.
            assert core.handle("POST", "/sweeps", b"{bad", client="a").status == 400
            assert core.handle("POST", "/sweeps", b"{bad", client="a").status == 400
            limited = core.handle("POST", "/sweeps", b"{bad", client="a")
            assert limited.status == 429
            assert int(limited.headers["Retry-After"]) >= 1
            # Another client is unaffected; the same client recovers with time.
            assert core.handle("POST", "/sweeps", b"{bad", client="b").status == 400
            clock[0] += 2.0
            assert core.handle("POST", "/sweeps", b"{bad", client="a").status == 400
        finally:
            core.queue.close(wait=True)


class TestArtifacts:
    def test_index_and_fetch_round_trip(self, core, store):
        store.put("table1/row", "ab" * 16, {"value": 7})
        index = decode(core.handle("GET", "/artifacts"))
        assert len(index["artifacts"]) == 1
        entry = index["artifacts"][0]
        assert entry["kind"] == "table1/row"
        response = core.handle(
            "GET", f"/artifacts/{entry['kind']}/{entry['fingerprint']}"
        )
        assert response.status == 200
        wrapper = json.loads(response.body.decode("utf-8"))
        assert wrapper["payload"] == {"value": 7}
        assert wrapper["checksum"]

    def test_unknown_artifact_is_a_404(self, core):
        assert core.handle("GET", "/artifacts/table1/row/none").status == 404

    def test_traversal_attempts_collapse_to_misses(self, core):
        response = core.handle("GET", "/artifacts/../../etc/passwd")
        assert response.status == 404


class TestWorkersEndpoint:
    def test_namespace_state_is_rendered_as_json(self, core, store):
        board = LeaseBoard(store.root, "ns-http", ttl=30.0)
        board.claim(3, "worker-a")
        board.mark_done(1, "worker-a")
        board.beat("worker-a", computed=5)
        document = decode(core.handle("GET", "/workers"))
        namespace = document["namespaces"][0]
        assert namespace["namespace"] == "ns-http"
        assert namespace["shards_done"] == [1]
        assert [lease["shard"] for lease in namespace["leases"]] == [3]
        assert namespace["heartbeats"][0]["owner"] == "worker-a"
        assert namespace["heartbeats"][0]["stale"] is False
