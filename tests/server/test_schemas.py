"""Sweep-spec validation: defensive parsing and canonical job identity."""

from __future__ import annotations

import pytest

from repro.experiments.runner import SUITE_EXPERIMENTS
from repro.server import ServerConfig, SweepSpecError, parse_sweep_spec, spec_fingerprint


CONFIG = ServerConfig()


class TestParsing:
    def test_empty_spec_is_the_default_full_suite(self):
        spec = parse_sweep_spec({}, CONFIG)
        assert spec.experiments == tuple(SUITE_EXPERIMENTS)
        assert spec.is_full_suite
        assert spec.arrays is None
        assert spec.trials == 8
        assert spec.workers == CONFIG.job_workers

    def test_subset_selection_normalizes_to_suite_order(self):
        spec = parse_sweep_spec({"experiments": ["fig7", "table1"]}, CONFIG)
        assert spec.experiments == ("table1", "fig7")
        assert not spec.is_full_suite

    def test_arrays_normalize_sorted(self):
        spec = parse_sweep_spec({"arrays": [128, 32]}, CONFIG)
        assert spec.arrays == (32, 128)

    def test_full_array_grid_normalizes_to_default(self):
        explicit = parse_sweep_spec({"arrays": [32, 64, 128]}, CONFIG)
        implicit = parse_sweep_spec({}, CONFIG)
        assert explicit.arrays is None
        assert spec_fingerprint(explicit) == spec_fingerprint(implicit)

    def test_explicit_default_backend_matches_omitted(self):
        assert parse_sweep_spec({"backend": "numpy64"}, CONFIG).backend == "numpy64"
        assert parse_sweep_spec({}, CONFIG).backend == "numpy64"

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([], "JSON object"),
            ({"trails": 4}, "unknown sweep spec fields"),
            ({"experiments": []}, "non-empty"),
            ({"experiments": ["fig6", "fig6"]}, "duplicate"),
            ({"experiments": ["nope"]}, "unknown experiment"),
            ({"experiments": "table1"}, "non-empty list"),
            ({"arrays": [48]}, "not in the sweep grid"),
            ({"arrays": [64, 64]}, "duplicate array size"),
            ({"arrays": ["64"]}, "must be an integer"),
            ({"trials": 0}, "between 1 and"),
            ({"trials": True}, "must be an integer"),
            ({"trials": 10_000}, "between 1 and"),
            ({"workers": 0}, "between 1 and"),
            ({"workers": 99}, "between 1 and"),
            ({"backend": "cuda"}, "unknown backend"),
        ],
    )
    def test_malformed_specs_rejected_with_actionable_messages(self, payload, match):
        with pytest.raises(SweepSpecError, match=match):
            parse_sweep_spec(payload, CONFIG)


class TestOptionalBackendAvailability:
    def test_unavailable_backend_rejected_with_install_hint(self, without_numba):
        """The spec parser refuses a registered-but-unavailable backend at
        submission time, naming the extra that would make it runnable."""
        with pytest.raises(SweepSpecError, match=r"repro\[compiled\]"):
            parse_sweep_spec({"backend": "compiled"}, CONFIG)

    def test_unknown_backend_still_distinct_from_unavailable(self, without_numba):
        with pytest.raises(SweepSpecError, match="unknown backend"):
            parse_sweep_spec({"backend": "cuda"}, CONFIG)

    def test_available_compiled_backend_accepted(self, monkeypatch):
        """With the backend runnable (here via the pure-Python seam), the
        spec normalizes and fingerprints like any other backend."""
        from repro.backend.core import _INSTANCES

        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        monkeypatch.delitem(_INSTANCES, "compiled", raising=False)
        try:
            spec = parse_sweep_spec({"backend": "compiled"}, CONFIG)
            assert spec.backend == "compiled"
            default = parse_sweep_spec({}, CONFIG)
            assert spec_fingerprint(spec) != spec_fingerprint(default)
        finally:
            # Drop the seam-configured instance so later tests (or the JIT
            # battery on a numba host) construct their own.
            _INSTANCES.pop("compiled", None)


class TestFingerprint:
    def test_identical_specs_share_a_job_id(self):
        a = parse_sweep_spec({"trials": 4, "arrays": [64]}, CONFIG)
        b = parse_sweep_spec({"arrays": [64], "trials": 4}, CONFIG)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_workers_do_not_change_the_job_id(self):
        # --workers N output is byte-identical to --workers 1, so a request
        # at a different parallelism must hit the same cached job.
        a = parse_sweep_spec({"workers": 1}, CONFIG)
        b = parse_sweep_spec({"workers": 4}, CONFIG)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_experiment_permutations_share_a_job_id(self):
        a = parse_sweep_spec({"experiments": ["fig7", "table1"]}, CONFIG)
        b = parse_sweep_spec({"experiments": ["table1", "fig7"]}, CONFIG)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    @pytest.mark.parametrize(
        "payload",
        [
            {"trials": 4},
            {"arrays": [64]},
            {"experiments": ["table1"]},
            {"backend": "numpy32"},
        ],
    )
    def test_result_changing_fields_change_the_job_id(self, payload):
        default = parse_sweep_spec({}, CONFIG)
        other = parse_sweep_spec(payload, CONFIG)
        assert spec_fingerprint(default) != spec_fingerprint(other)
