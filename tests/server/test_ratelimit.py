"""Token-bucket rate limiter: refill arithmetic under a fake clock."""

from __future__ import annotations

import pytest

from repro.server import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate_per_minute=60, capacity=3, now=0.0)
        assert [bucket.take(0.0)[0] for _ in range(3)] == [True, True, True]
        allowed, retry = bucket.take(0.0)
        assert not allowed
        assert retry == pytest.approx(1.0)  # 60/min = 1 token per second

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate_per_minute=60, capacity=1, now=0.0)
        assert bucket.take(0.0)[0]
        assert not bucket.take(0.5)[0]
        assert bucket.take(1.0)[0]

    def test_refill_never_exceeds_capacity(self):
        bucket = TokenBucket(rate_per_minute=600, capacity=2, now=0.0)
        bucket.take(0.0)
        bucket._refill(1000.0)
        assert bucket.tokens == 2.0

    @pytest.mark.parametrize("rate, capacity", [(0, 1), (-5, 1), (60, 0)])
    def test_invalid_parameters_rejected(self, rate, capacity):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_minute=rate, capacity=capacity, now=0.0)


class TestRateLimiter:
    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_minute=60, burst=1, clock=clock)
        assert limiter.check("alice")[0]
        assert not limiter.check("alice")[0]
        assert limiter.check("bob")[0]

    def test_retry_after_names_the_next_token(self):
        clock = FakeClock()
        limiter = RateLimiter(rate_per_minute=30, burst=1, clock=clock)
        assert limiter.check("c")[0]
        allowed, retry = limiter.check("c")
        assert not allowed
        assert retry == pytest.approx(2.0)  # 30/min = one token every 2 s
        clock.advance(2.0)
        assert limiter.check("c")[0]

    def test_zero_rate_disables_limiting(self):
        limiter = RateLimiter(rate_per_minute=0, burst=1, clock=FakeClock())
        assert not limiter.enabled
        assert all(limiter.check("d")[0] for _ in range(100))
