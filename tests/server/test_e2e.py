"""End-to-end service tests over real sockets (stdlib fallback server).

The battery exercises the acceptance contract of the experiment service:
POST a sweep, poll the job, and the served report is byte-identical to the
file ``repro report --json`` writes; duplicate and concurrent submissions
of one spec share a single computation; submission floods get 429s.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.engine.cache import default_decomposition_cache
from repro.server import ServerConfig, ServerCore, start_stdlib_server
from repro.store import ExperimentStore


@pytest.fixture(autouse=True)
def detach_store_after():
    yield
    default_decomposition_cache.detach_store()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = ExperimentStore(tmp_path_factory.mktemp("server-store"))
    config = ServerConfig(job_workers=2, max_concurrent_jobs=2, rate_limit=0)
    running = start_stdlib_server(ServerCore(store, config))
    yield running
    running.stop()


def request(method, url, body=None, timeout=30.0):
    req = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def poll_until_done(base_url, job_id, timeout=300.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, _, body = request("GET", f"{base_url}/jobs/{job_id}")
        assert status == 200
        document = json.loads(body)
        if document["status"] in ("done", "failed"):
            return document
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} still not finished after {timeout}s")


def test_full_sweep_report_is_byte_identical_to_cli(server, tmp_path):
    spec = json.dumps({"arrays": [32], "trials": 2, "workers": 2}).encode()
    status, _, body = request("POST", f"{server.url}/sweeps", spec)
    assert status == 202
    job_id = json.loads(body)["job"]
    document = poll_until_done(server.url, job_id)
    assert document["status"] == "done", document.get("error")
    assert document["launches"] == 1

    status, headers, served = request("GET", f"{server.url}/jobs/{job_id}/report")
    assert status == 200
    assert headers["Content-Type"] == "application/json"

    # The same sweep through the CLI, into a fresh store and JSON file.
    out = tmp_path / "report.json"
    cli_main(
        [
            "--store",
            str(tmp_path / "cli-store"),
            "report",
            "--json",
            str(out),
            "--arrays",
            "32",
            "--trials",
            "2",
        ]
    )
    assert served == out.read_bytes()


def test_concurrent_identical_posts_share_one_computation(server):
    spec = json.dumps({"experiments": ["table1"], "workers": 1}).encode()
    responses = []

    def submit():
        responses.append(request("POST", f"{server.url}/sweeps", spec))

    threads = [threading.Thread(target=submit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    codes = sorted(status for status, _, _ in responses)
    assert codes == [200, 202]  # one creation, one dedup — never two jobs
    ids = {json.loads(body)["job"] for _, _, body in responses}
    assert len(ids) == 1
    (job_id,) = ids

    document = poll_until_done(server.url, job_id)
    assert document["status"] == "done"
    assert document["launches"] == 1

    # A warm resubmission performs zero new computations: no store writes,
    # no relaunch, and the report bytes come back unchanged.
    puts_before = server.core.store.puts
    _, _, first_report = request("GET", f"{server.url}/jobs/{job_id}/report")
    status, _, body = request("POST", f"{server.url}/sweeps", spec)
    assert status == 200
    again = json.loads(body)
    assert again["job"] == job_id
    assert again["deduplicated"] is True
    assert again["launches"] == 1
    assert server.core.store.puts == puts_before
    _, _, second_report = request("GET", f"{server.url}/jobs/{job_id}/report")
    assert second_report == first_report


def test_submission_flood_gets_429_with_retry_after(tmp_path):
    store = ExperimentStore(tmp_path / "store")
    config = ServerConfig(job_workers=1, rate_limit=60, rate_burst=1)
    limited = start_stdlib_server(ServerCore(store, config))
    try:
        # Invalid bodies spend rate tokens too, so nothing ever computes here.
        first, _, _ = request("POST", f"{limited.url}/sweeps", b"{bad")
        assert first == 400
        second, headers, body = request("POST", f"{limited.url}/sweeps", b"{bad")
        assert second == 429
        assert int(headers["Retry-After"]) >= 1
        assert "rate limit" in json.loads(body)["error"]
    finally:
        limited.stop()


def test_health_workers_and_artifacts_endpoints(server):
    status, _, body = request("GET", f"{server.url}/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["store"] == str(server.core.store.root)

    status, _, body = request("GET", f"{server.url}/workers")
    assert status == 200
    assert "namespaces" in json.loads(body)

    server.core.store.put("e2e/check", "cd" * 16, {"value": 11})
    status, _, body = request("GET", f"{server.url}/artifacts")
    assert status == 200
    entries = {
        (entry["kind"], entry["fingerprint"])
        for entry in json.loads(body)["artifacts"]
    }
    assert ("e2e/check", "cd" * 16) in entries
    status, _, body = request(
        "GET", f"{server.url}/artifacts/e2e/check/{'cd' * 16}"
    )
    assert status == 200
    assert json.loads(body)["payload"] == {"value": 11}
