"""Tests for the rank/group configuration search and Pareto extraction."""

from __future__ import annotations

import pytest

from repro.lowrank.compress import CompressionSpec
from repro.lowrank.search import (
    SweepPoint,
    best_configuration,
    network_lowrank_cycles,
    pareto_front,
    sweep_configurations,
)
from repro.mapping.geometry import ConvGeometry


@pytest.fixture
def geometries():
    return [
        ConvGeometry(8, 16, 3, 3, 16, 16, padding=1, name="a"),
        ConvGeometry(16, 16, 3, 3, 16, 16, padding=1, name="b"),
        ConvGeometry(16, 32, 3, 3, 8, 8, padding=1, name="c"),
    ]


def fake_accuracy(spec: CompressionSpec) -> float:
    """A monotone stand-in for the proxy: more rank and more groups → higher accuracy."""
    return 80.0 + 10.0 / spec.rank_divisor + spec.groups * 0.5


class TestNetworkCycles:
    def test_totals_positive_and_monotone_in_rank(self, geometries, small_array):
        low = network_lowrank_cycles(geometries, small_array, rank_divisor=16, groups=1).total_cycles
        high = network_lowrank_cycles(geometries, small_array, rank_divisor=2, groups=1).total_cycles
        assert 0 < low <= high

    def test_label_mentions_configuration(self, geometries, small_array):
        report = network_lowrank_cycles(geometries, small_array, rank_divisor=4, groups=2)
        assert "g=2" in report.method

    def test_per_layer_entries(self, geometries, small_array):
        report = network_lowrank_cycles(geometries, small_array, rank_divisor=4, groups=1)
        assert len(report.layers) == len(geometries)


class TestSweep:
    def test_sweep_covers_all_configurations(self, geometries, small_array):
        result = sweep_configurations(
            geometries, small_array, fake_accuracy, rank_divisors=(2, 4), group_counts=(1, 2)
        )
        assert len(result.points) == 4
        rows = result.as_rows()
        assert {row["groups"] for row in rows} == {1, 2}

    def test_sorted_by_cycles(self, geometries, small_array):
        result = sweep_configurations(
            geometries, small_array, fake_accuracy, rank_divisors=(2, 8), group_counts=(1,)
        )
        cycles = [p.cycles for p in result.sorted_by_cycles()]
        assert cycles == sorted(cycles)

    def test_pareto_front_subset_and_nondominated(self, geometries, small_array):
        result = sweep_configurations(geometries, small_array, fake_accuracy)
        front = result.pareto()
        assert 0 < len(front) <= len(result.points)
        for candidate in front:
            dominated = any(
                other.accuracy >= candidate.accuracy
                and other.cycles <= candidate.cycles
                and (other.accuracy > candidate.accuracy or other.cycles < candidate.cycles)
                for other in result.points
            )
            assert not dominated

    def test_point_label(self):
        point = SweepPoint(spec=CompressionSpec(rank_divisor=4, groups=2), accuracy=90.0, cycles=100, use_sdk=True)
        assert "SDK" in point.label


class TestBestConfiguration:
    def test_respects_accuracy_budget(self, geometries, small_array):
        result = sweep_configurations(geometries, small_array, fake_accuracy)
        baseline = 86.0
        best = best_configuration(result, max_accuracy_drop=1.0, baseline_accuracy=baseline)
        assert best is not None
        assert baseline - best.accuracy <= 1.0

    def test_returns_none_when_budget_impossible(self, geometries, small_array):
        result = sweep_configurations(geometries, small_array, lambda spec: 10.0)
        assert best_configuration(result, max_accuracy_drop=1.0, baseline_accuracy=99.0) is None

    def test_picks_fastest_admissible(self, geometries, small_array):
        result = sweep_configurations(geometries, small_array, fake_accuracy)
        best = best_configuration(result, max_accuracy_drop=100.0, baseline_accuracy=86.0)
        assert best is not None
        assert best.cycles == min(p.cycles for p in result.points)


class TestParetoFrontFunction:
    def test_single_point(self):
        point = SweepPoint(CompressionSpec(), accuracy=90.0, cycles=10, use_sdk=True)
        assert pareto_front([point]) == [point]

    def test_dominated_point_removed(self):
        good = SweepPoint(CompressionSpec(rank_divisor=2), accuracy=92.0, cycles=10, use_sdk=True)
        bad = SweepPoint(CompressionSpec(rank_divisor=4), accuracy=90.0, cycles=20, use_sdk=True)
        assert pareto_front([good, bad]) == [good]

    def test_incomparable_points_kept(self):
        fast = SweepPoint(CompressionSpec(rank_divisor=16), accuracy=85.0, cycles=5, use_sdk=True)
        accurate = SweepPoint(CompressionSpec(rank_divisor=2), accuracy=95.0, cycles=50, use_sdk=True)
        front = pareto_front([fast, accurate])
        assert set(id(p) for p in front) == {id(fast), id(accurate)}
