"""Tests for the model-level compression API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank.compress import (
    CompressionSpec,
    compress_model,
    default_rank_fn,
    eligible_layers,
    rank_from_divisor,
)
from repro.lowrank.layers import GroupLowRankConv2d, GroupLowRankLinear
from repro.nn.models import SimpleCNN, resnet20
from repro.nn.modules import Conv2d, Linear
from repro.nn.tensor import Tensor


class TestSpecValidation:
    def test_defaults(self):
        spec = CompressionSpec()
        assert spec.rank_divisor == 4 and spec.groups == 1

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            CompressionSpec(rank_divisor=0)
        with pytest.raises(ValueError):
            CompressionSpec(groups=0)
        with pytest.raises(ValueError):
            CompressionSpec(min_rank=0)

    def test_label(self):
        assert CompressionSpec(rank_divisor=8, groups=4).label == "g=4, k=m/8"

    def test_rank_from_divisor(self):
        assert rank_from_divisor(64, 8) == 8
        assert rank_from_divisor(4, 16) == 1  # clamped to min_rank


class TestEligibility:
    def test_first_conv_and_last_linear_skipped_by_default(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        spec = CompressionSpec(compress_linear=True)
        names = [name for name, _ in eligible_layers(model, spec)]
        convs = [n for n, m in model.named_modules() if isinstance(m, Conv2d)]
        linears = [n for n, m in model.named_modules() if isinstance(m, Linear)]
        assert convs[0] not in names
        assert linears[-1] not in names

    def test_pointwise_skipped_by_default(self):
        model = resnet20(base_width=8)
        spec = CompressionSpec()
        names = [name for name, _ in eligible_layers(model, spec)]
        assert not any("shortcut" in name for name in names)

    def test_pointwise_included_when_requested(self):
        model = resnet20(base_width=8)
        spec = CompressionSpec(skip_pointwise=False)
        names = [name for name, _ in eligible_layers(model, spec)]
        assert any("shortcut" in name for name in names)

    def test_linear_layers_only_with_flag(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        without = eligible_layers(model, CompressionSpec(compress_linear=False))
        assert all(isinstance(m, Conv2d) for _, m in without)


class TestCompressModel:
    def test_replaces_eligible_convs(self):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        report = compress_model(model, CompressionSpec(rank_divisor=2, groups=2))
        lowrank_layers = [m for m in model.modules() if isinstance(m, GroupLowRankConv2d)]
        assert len(lowrank_layers) == len(report.records) == 2
        assert report.skipped  # the first conv stays dense

    def test_model_still_runs_after_compression(self, rng):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        compress_model(model, CompressionSpec(rank_divisor=4, groups=2))
        out = model(Tensor(rng.standard_normal((2, 3, 12, 12))))
        assert out.shape == (2, 5)

    def test_compression_reduces_parameters(self):
        model = SimpleCNN(num_classes=5, widths=(16, 16, 32), seed=0)
        before = model.num_parameters()
        report = compress_model(model, CompressionSpec(rank_divisor=8))
        after = model.num_parameters()
        assert after < before
        assert report.compression_ratio > 1

    def test_outputs_close_at_high_rank(self, rng):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        x = Tensor(rng.standard_normal((2, 3, 12, 12)))
        model.eval()
        reference = model(x).data
        compress_model(model, CompressionSpec(rank_divisor=1))  # full rank: exact
        model.eval()
        np.testing.assert_allclose(model(x).data, reference, atol=1e-6)

    def test_report_records_errors_and_ratio(self):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        report = compress_model(model, CompressionSpec(rank_divisor=4, groups=2))
        assert all(0 <= r.relative_error <= 1 for r in report.records)
        assert report.mean_relative_error <= report.max_relative_error
        assert all(r.compression_ratio > 1 for r in report.records)

    def test_more_groups_lower_error_at_same_rank(self):
        model_g1 = SimpleCNN(num_classes=5, widths=(8, 16, 16), seed=0)
        model_g4 = SimpleCNN(num_classes=5, widths=(8, 16, 16), seed=0)
        report_g1 = compress_model(model_g1, CompressionSpec(rank_divisor=8, groups=1))
        report_g4 = compress_model(model_g4, CompressionSpec(rank_divisor=8, groups=4))
        assert report_g4.mean_relative_error <= report_g1.mean_relative_error + 1e-9

    def test_custom_rank_fn(self):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        report = compress_model(model, CompressionSpec(), rank_fn=lambda name, module: 1)
        assert all(r.rank == 1 for r in report.records)

    def test_groups_fall_back_when_not_divisible(self):
        """Layers whose channel count is not divisible by the requested group count degrade gracefully."""
        model = SimpleCNN(num_classes=5, widths=(6, 10, 12), seed=0)
        report = compress_model(model, CompressionSpec(rank_divisor=2, groups=4))
        assert all(record.groups >= 1 for record in report.records)

    def test_compress_linear_layers(self):
        from repro.nn.models import MLP

        model = MLP(in_features=16, hidden=12, num_classes=4, seed=0)
        spec = CompressionSpec(rank_divisor=2, groups=2, compress_linear=True, skip_last_linear=True)
        report = compress_model(model, spec)
        assert any(isinstance(m, GroupLowRankLinear) for m in model.modules())
        assert any(r.kind == "linear" for r in report.records)

    def test_describe_output(self):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        report = compress_model(model, CompressionSpec(rank_divisor=4))
        text = report.describe()
        assert "compression" in text and "parameters" in text

    def test_default_rank_fn_rejects_unknown_module(self):
        spec = CompressionSpec()
        fn = default_rank_fn(spec)
        with pytest.raises(TypeError):
            fn("x", object())  # type: ignore[arg-type]

    def test_resnet20_compression_end_to_end(self, rng):
        """Compress a width-reduced ResNet-20 and check it still produces logits."""
        model = resnet20(num_classes=10, base_width=8)
        report = compress_model(model, CompressionSpec(rank_divisor=4, groups=2))
        assert len(report.records) == 18  # all 3x3 block convolutions except conv1
        out = model(Tensor(rng.standard_normal((1, 3, 16, 16))))
        assert out.shape == (1, 10)
