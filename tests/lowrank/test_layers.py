"""Tests for the low-rank compressed layers (functional equivalence, training)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank.group import group_decompose
from repro.lowrank.layers import (
    GroupLowRankConv2d,
    GroupLowRankLinear,
    LowRankConv2d,
    LowRankLinear,
)
from repro.nn import functional as F
from repro.nn.modules import Conv2d, Linear
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor


class TestGroupLowRankConv2d:
    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_forward_matches_effective_weight(self, groups, rng):
        """The two-stage forward equals a dense convolution with the reconstructed kernel."""
        layer = GroupLowRankConv2d(8, 6, 3, rank=2, groups=groups, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 8, 6, 6)))
        out = layer(x)
        dense = F.conv2d(x, Tensor(layer.effective_weight()), Tensor(layer.bias.data), padding=1)
        np.testing.assert_allclose(out.data, dense.data, atol=1e-9)

    def test_from_conv2d_full_rank_is_exact(self, rng):
        conv = Conv2d(4, 6, 3, padding=1, rng=rng)
        layer = GroupLowRankConv2d.from_conv2d(conv, rank=6, groups=1)
        x = Tensor(rng.standard_normal((1, 4, 5, 5)))
        np.testing.assert_allclose(layer(x).data, conv(x).data, atol=1e-8)

    def test_from_conv2d_low_rank_approximates(self, rng):
        conv = Conv2d(8, 16, 3, padding=1, bias=False, rng=rng)
        exact = GroupLowRankConv2d.from_conv2d(conv, rank=16, groups=1)
        rough = GroupLowRankConv2d.from_conv2d(conv, rank=1, groups=1)
        x = Tensor(rng.standard_normal((1, 8, 6, 6)))
        reference = conv(x).data
        err_exact = np.linalg.norm(exact(x).data - reference)
        err_rough = np.linalg.norm(rough(x).data - reference)
        assert err_exact < err_rough

    def test_grouping_reduces_approximation_error(self, rng):
        """Theorem 1 at the layer level: more groups, same rank → smaller error."""
        conv = Conv2d(8, 16, 3, padding=1, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((1, 8, 6, 6)))
        reference = conv(x).data
        err_g1 = np.linalg.norm(GroupLowRankConv2d.from_conv2d(conv, rank=2, groups=1)(x).data - reference)
        err_g4 = np.linalg.norm(GroupLowRankConv2d.from_conv2d(conv, rank=2, groups=4)(x).data - reference)
        assert err_g4 <= err_g1 + 1e-9

    def test_effective_weight_matches_group_decomposition(self, rng):
        conv = Conv2d(4, 6, 3, padding=1, bias=False, rng=rng)
        layer = GroupLowRankConv2d.from_conv2d(conv, rank=2, groups=2)
        factors = group_decompose(conv.im2col_weight(), 2, 2)
        np.testing.assert_allclose(
            layer.effective_weight().reshape(6, -1), factors.reconstruct(), atol=1e-10
        )

    def test_factor_matrices_shapes(self, rng):
        layer = GroupLowRankConv2d(8, 6, 3, rank=2, groups=4, rng=rng)
        left, right = layer.factor_matrices()
        assert left.shape == (6, 8)
        assert right.shape == (8, 8 * 9)

    def test_parameter_count_and_compression_ratio(self, rng):
        layer = GroupLowRankConv2d(8, 16, 3, rank=2, groups=2, bias=False, rng=rng)
        expected = 2 * 2 * (8 // 2) * 9 + 16 * 4
        assert layer.right_weight.size + layer.left_weight.size == expected
        assert layer.compression_ratio() == pytest.approx(8 * 16 * 9 / expected)

    def test_stride_and_padding_preserved(self, rng):
        conv = Conv2d(4, 8, 3, stride=2, padding=1, rng=rng)
        layer = GroupLowRankConv2d.from_conv2d(conv, rank=4, groups=1)
        x = Tensor(rng.standard_normal((1, 4, 8, 8)))
        assert layer(x).shape == conv(x).shape

    def test_bias_copied(self, rng):
        conv = Conv2d(4, 8, 3, padding=1, rng=rng)
        conv.bias.data[:] = np.arange(8)
        layer = GroupLowRankConv2d.from_conv2d(conv, rank=4)
        np.testing.assert_allclose(layer.bias.data, np.arange(8))

    def test_groups_must_divide_channels(self, rng):
        with pytest.raises(ValueError):
            GroupLowRankConv2d(6, 8, 3, rank=2, groups=4, rng=rng)

    def test_rank_clamped_to_maximum(self, rng):
        layer = GroupLowRankConv2d(4, 8, 3, rank=1000, groups=1, rng=rng)
        assert layer.rank == min(8, 4 * 9)

    def test_invalid_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            GroupLowRankConv2d(4, 8, 3, rank=0, rng=rng)

    def test_load_factors_validates_groups_and_rank(self, rng):
        layer = GroupLowRankConv2d(8, 6, 3, rank=2, groups=2, rng=rng)
        wrong_groups = group_decompose(rng.standard_normal((6, 72)), 2, 4)
        with pytest.raises(ValueError):
            layer.load_factors(wrong_groups)
        wrong_rank = group_decompose(rng.standard_normal((6, 72)), 3, 2)
        with pytest.raises(ValueError):
            layer.load_factors(wrong_rank)

    def test_gradients_flow_to_both_factors(self, rng):
        layer = GroupLowRankConv2d(4, 6, 3, rank=2, groups=2, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 5, 5)))
        layer(x).sum().backward()
        assert layer.left_weight.grad is not None and np.any(layer.left_weight.grad != 0)
        assert layer.right_weight.grad is not None and np.any(layer.right_weight.grad != 0)

    def test_trainable_end_to_end(self, rng):
        """A single compressed layer can be optimized to fit a random target."""
        layer = GroupLowRankConv2d(3, 4, 3, rank=2, groups=1, padding=1, rng=rng)
        x = Tensor(rng.standard_normal((4, 3, 6, 6)))
        target = rng.standard_normal((4, 4, 6, 6))
        optimizer = SGD(layer.parameters(), lr=0.05)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            diff = layer(x) - Tensor(target)
            loss = (diff * diff).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_repr_mentions_configuration(self, rng):
        layer = GroupLowRankConv2d(4, 8, 3, rank=2, groups=2, rng=rng)
        assert "rank=2" in layer.extra_repr() and "groups=2" in layer.extra_repr()


class TestLowRankConv2d:
    def test_is_ungrouped(self, rng):
        layer = LowRankConv2d(4, 8, 3, rank=2, rng=rng)
        assert layer.groups == 1

    def test_from_conv2d_rejects_groups(self, rng):
        conv = Conv2d(4, 8, 3, rng=rng)
        with pytest.raises(ValueError):
            LowRankConv2d.from_conv2d(conv, rank=2, groups=2)

    def test_from_conv2d_matches_dense_at_full_rank(self, rng):
        conv = Conv2d(4, 6, 3, padding=1, rng=rng)
        layer = LowRankConv2d.from_conv2d(conv, rank=6)
        x = Tensor(rng.standard_normal((1, 4, 5, 5)))
        np.testing.assert_allclose(layer(x).data, conv(x).data, atol=1e-8)


class TestGroupLowRankLinear:
    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_forward_matches_effective_weight(self, groups, rng):
        layer = GroupLowRankLinear(16, 10, rank=3, groups=groups, rng=rng)
        x = Tensor(rng.standard_normal((5, 16)))
        expected = x.data @ layer.effective_weight().T + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, atol=1e-10)

    def test_from_linear_full_rank_exact(self, rng):
        linear = Linear(12, 8, rng=rng)
        layer = GroupLowRankLinear.from_linear(linear, rank=8, groups=1)
        x = Tensor(rng.standard_normal((3, 12)))
        np.testing.assert_allclose(layer(x).data, linear(x).data, atol=1e-8)

    def test_grouping_reduces_error(self, rng):
        linear = Linear(16, 12, rng=rng)
        x = Tensor(rng.standard_normal((4, 16)))
        reference = linear(x).data
        err_g1 = np.linalg.norm(GroupLowRankLinear.from_linear(linear, rank=2, groups=1)(x).data - reference)
        err_g4 = np.linalg.norm(GroupLowRankLinear.from_linear(linear, rank=2, groups=4)(x).data - reference)
        assert err_g4 <= err_g1 + 1e-9

    def test_compression_ratio(self, rng):
        layer = GroupLowRankLinear(32, 16, rank=2, groups=2, bias=False, rng=rng)
        dense = 32 * 16
        assert layer.compression_ratio() == pytest.approx(dense / (layer.right_weight.size + layer.left_weight.size))

    def test_groups_must_divide_features(self, rng):
        with pytest.raises(ValueError):
            GroupLowRankLinear(10, 8, rank=2, groups=4, rng=rng)

    def test_gradients_flow(self, rng):
        layer = GroupLowRankLinear(8, 6, rank=2, groups=2, rng=rng)
        layer(Tensor(rng.standard_normal((3, 8)))).sum().backward()
        assert layer.left_weight.grad is not None
        assert layer.right_weight.grad is not None

    def test_load_factors_validation(self, rng):
        layer = GroupLowRankLinear(8, 6, rank=2, groups=2, rng=rng)
        with pytest.raises(ValueError):
            layer.load_factors(group_decompose(rng.standard_normal((6, 8)), 2, 4))


class TestLowRankLinear:
    def test_ungrouped(self, rng):
        layer = LowRankLinear(8, 6, rank=2, rng=rng)
        assert layer.groups == 1

    def test_from_linear_rejects_groups(self, rng):
        with pytest.raises(ValueError):
            LowRankLinear.from_linear(Linear(8, 6, rng=rng), rank=2, groups=2)

    def test_parameter_count_property(self, rng):
        layer = LowRankLinear(8, 6, rank=2, rng=rng)
        assert layer.parameter_count == layer.right_weight.size + layer.left_weight.size + 6
