"""Tests for sensitivity-driven per-layer rank allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank.compress import CompressionSpec, compress_model
from repro.lowrank.group import group_decompose, group_relative_error
from repro.lowrank.rank_allocation import (
    RankAllocation,
    allocate_ranks_for_cycle_budget,
    allocate_ranks_for_error_budget,
    layer_sensitivity,
    network_sensitivity,
)
from repro.mapping.cycles import lowrank_cycles
from repro.mapping.geometry import ConvGeometry
from repro.nn.models import SimpleCNN
from repro.nn.modules import Conv2d


@pytest.fixture
def geometries():
    return [
        ConvGeometry(8, 16, 3, 3, 16, 16, padding=1, name="early"),
        ConvGeometry(16, 32, 3, 3, 8, 8, padding=1, name="mid"),
        ConvGeometry(32, 64, 3, 3, 4, 4, padding=1, name="late"),
    ]


class TestLayerSensitivity:
    def test_error_curve_monotone_decreasing(self, small_geometry):
        sensitivity = layer_sensitivity(small_geometry, groups=1)
        assert sensitivity.max_rank == min(small_geometry.m, small_geometry.n)
        assert np.all(np.diff(sensitivity.errors) <= 1e-12)
        assert sensitivity.errors[-1] == pytest.approx(0.0, abs=1e-6)

    def test_error_curve_matches_actual_decomposition(self, small_geometry, rng):
        weight = rng.standard_normal((small_geometry.m, small_geometry.n))
        sensitivity = layer_sensitivity(small_geometry, groups=2, weight_matrix=weight)
        for rank in (1, 2, 4):
            direct = group_relative_error(weight, group_decompose(weight, rank, 2))
            assert sensitivity.error_at(rank) == pytest.approx(direct, abs=1e-9)

    def test_error_at_edges(self, small_geometry):
        sensitivity = layer_sensitivity(small_geometry)
        assert sensitivity.error_at(0) == 1.0
        assert sensitivity.error_at(10_000) == pytest.approx(sensitivity.errors[-1])

    def test_rank_for_error(self, small_geometry, rng):
        weight = rng.standard_normal((small_geometry.m, small_geometry.n))
        sensitivity = layer_sensitivity(small_geometry, weight_matrix=weight)
        rank = sensitivity.rank_for_error(0.3)
        assert sensitivity.error_at(rank) <= 0.3
        if rank > 1:
            assert sensitivity.error_at(rank - 1) > 0.3

    def test_rank_for_impossible_error_is_max(self, small_geometry):
        sensitivity = layer_sensitivity(small_geometry)
        assert sensitivity.rank_for_error(-0.1) == sensitivity.max_rank

    def test_weight_shape_validated(self, small_geometry, rng):
        with pytest.raises(ValueError):
            layer_sensitivity(small_geometry, weight_matrix=rng.standard_normal((3, 3)))

    def test_groups_reduce_error_at_fixed_rank(self, small_geometry, rng):
        weight = rng.standard_normal((small_geometry.m, small_geometry.n))
        g1 = layer_sensitivity(small_geometry, groups=1, weight_matrix=weight)
        g4 = layer_sensitivity(small_geometry, groups=4, weight_matrix=weight)
        assert g4.error_at(2) <= g1.error_at(2) + 1e-9


class TestErrorBudgetAllocation:
    def test_every_layer_meets_budget(self, geometries):
        sensitivities = network_sensitivity(geometries, groups=2)
        allocation = allocate_ranks_for_error_budget(sensitivities, max_relative_error=0.25, groups=2)
        assert len(allocation) == 3
        for name, rank in allocation.ranks.items():
            assert sensitivities[name].error_at(rank) <= 0.25

    def test_tighter_budget_needs_more_rank(self, geometries):
        sensitivities = network_sensitivity(geometries)
        loose = allocate_ranks_for_error_budget(sensitivities, 0.5)
        tight = allocate_ranks_for_error_budget(sensitivities, 0.1)
        assert tight.total_rank >= loose.total_rank

    def test_invalid_budget(self, geometries):
        sensitivities = network_sensitivity(geometries)
        with pytest.raises(ValueError):
            allocate_ranks_for_error_budget(sensitivities, 1.5)

    def test_mean_error_helper(self, geometries):
        sensitivities = network_sensitivity(geometries)
        allocation = allocate_ranks_for_error_budget(sensitivities, 0.3)
        assert 0 <= allocation.mean_error(sensitivities) <= 0.3 + 1e-9


class TestCycleBudgetAllocation:
    def test_respects_budget(self, geometries, small_array):
        sensitivities = network_sensitivity(geometries)
        minimal = sum(
            lowrank_cycles(s.geometry, small_array, rank=1, groups=s.groups, use_sdk=True).cycles
            for s in sensitivities.values()
        )
        budget = int(minimal * 1.5)
        allocation = allocate_ranks_for_cycle_budget(sensitivities, small_array, budget)
        assert allocation.total_cycles(sensitivities, small_array) <= budget

    def test_larger_budget_never_worse(self, geometries, small_array):
        sensitivities = network_sensitivity(geometries)
        minimal = sum(
            lowrank_cycles(s.geometry, small_array, rank=1, groups=s.groups, use_sdk=True).cycles
            for s in sensitivities.values()
        )
        small_alloc = allocate_ranks_for_cycle_budget(sensitivities, small_array, int(minimal * 1.2))
        large_alloc = allocate_ranks_for_cycle_budget(sensitivities, small_array, int(minimal * 4))
        assert large_alloc.mean_error(sensitivities) <= small_alloc.mean_error(sensitivities) + 1e-9
        assert large_alloc.total_rank >= small_alloc.total_rank

    def test_huge_budget_saturates_at_max_rank(self, geometries, small_array):
        sensitivities = network_sensitivity(geometries)
        allocation = allocate_ranks_for_cycle_budget(sensitivities, small_array, 10**9)
        for name, rank in allocation.ranks.items():
            sensitivity = sensitivities[name]
            # Either maximum rank, or a rank past which errors no longer improve.
            assert rank == sensitivity.max_rank or sensitivity.error_at(rank) <= 1e-9

    def test_invalid_arguments(self, geometries, small_array):
        sensitivities = network_sensitivity(geometries)
        with pytest.raises(ValueError):
            allocate_ranks_for_cycle_budget(sensitivities, small_array, 0)
        with pytest.raises(ValueError):
            allocate_ranks_for_cycle_budget(sensitivities, small_array, 100, rank_step=0)


class TestRankAllocationObject:
    def test_usable_as_compress_model_rank_fn(self):
        model = SimpleCNN(num_classes=5, widths=(8, 16, 16), seed=0)
        geometries = []
        hw = {"features.3": 12, "features.6": 6}
        for name, module in model.named_modules():
            if isinstance(module, Conv2d) and name in hw:
                geometries.append(
                    ConvGeometry(
                        module.in_channels, module.out_channels, 3, 3, hw[name], hw[name],
                        stride=module.stride[0], padding=1, name=name,
                    )
                )
        sensitivities = network_sensitivity(
            geometries,
            groups=2,
            weights={g.name: model.get_submodule(g.name).im2col_weight() for g in geometries},
        )
        allocation = allocate_ranks_for_error_budget(sensitivities, 0.3, groups=2)
        report = compress_model(model, CompressionSpec(groups=2), rank_fn=allocation)
        assert {r.name for r in report.records} == set(allocation.ranks)
        for record in report.records:
            assert record.rank == min(allocation[record.name],
                                      # layers clamp to their own maximum rank
                                      record.rank if record.rank else allocation[record.name])
            assert record.relative_error <= 0.3 + 1e-6

    def test_fallback_for_unallocated_conv(self):
        allocation = RankAllocation(ranks={}, groups=1)
        conv = Conv2d(4, 16, 3, rng=np.random.default_rng(0))
        assert allocation("anything", conv) == 4

    def test_unallocated_non_conv_raises(self):
        allocation = RankAllocation(ranks={}, groups=1)
        with pytest.raises(KeyError):
            allocation("x", object())  # type: ignore[arg-type]

    def test_getitem_and_len(self):
        allocation = RankAllocation(ranks={"a": 2, "b": 3})
        assert allocation["a"] == 2
        assert len(allocation) == 2
        assert allocation.total_rank == 5
