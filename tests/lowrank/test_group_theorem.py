"""Theorem 1: the group low-rank reconstruction error never exceeds the traditional one.

These are the property-based tests DESIGN.md promises: for arbitrary matrices,
ranks and group counts, ``ε_g ≤ ε`` must hold (up to numerical tolerance), and
the grouped machinery must be internally consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowrank.decompose import decompose, reconstruction_error
from repro.lowrank.group import (
    GroupLowRankFactors,
    group_decompose,
    group_reconstruction_error,
    group_relative_error,
    shared_left_factors,
    split_columns,
    theorem1_errors,
)

TOLERANCE = 1e-8


@st.composite
def matrix_and_grouping(draw):
    """Random matrix with a compatible (rank, groups) configuration."""
    rows = draw(st.integers(min_value=2, max_value=24))
    groups = draw(st.sampled_from([1, 2, 3, 4]))
    cols_per_group = draw(st.integers(min_value=2, max_value=12))
    cols = groups * cols_per_group
    rank = draw(st.integers(min_value=1, max_value=min(rows, cols_per_group)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["gaussian", "lowrank", "structured"]))
    if kind == "gaussian":
        matrix = rng.standard_normal((rows, cols))
    elif kind == "lowrank":
        true_rank = draw(st.integers(min_value=1, max_value=min(rows, cols)))
        matrix = rng.standard_normal((rows, true_rank)) @ rng.standard_normal((true_rank, cols))
    else:
        base = rng.standard_normal((rows, 1)) @ rng.standard_normal((1, cols))
        matrix = base + 0.1 * rng.standard_normal((rows, cols))
    return matrix, rank, groups


class TestTheorem1Property:
    @settings(max_examples=60, deadline=None)
    @given(matrix_and_grouping())
    def test_grouped_error_never_exceeds_traditional(self, case):
        matrix, rank, groups = case
        eps_g, eps = theorem1_errors(matrix, rank, groups)
        assert eps_g <= eps + TOLERANCE

    @settings(max_examples=40, deadline=None)
    @given(matrix_and_grouping())
    def test_grouped_error_never_exceeds_shared_left_form(self, case):
        """Eq. (4): per-group SVD beats the shared-L reconstruction block-wise too."""
        matrix, rank, groups = case
        grouped = group_decompose(matrix, rank, groups)
        shared = shared_left_factors(matrix, rank, groups)
        blocks = split_columns(matrix, groups)
        for block, optimal, traditional in zip(blocks, grouped.factors, shared.factors):
            optimal_err = np.linalg.norm(block - optimal.reconstruct())
            shared_err = np.linalg.norm(block - traditional.reconstruct())
            assert optimal_err <= shared_err + TOLERANCE

    @settings(max_examples=40, deadline=None)
    @given(matrix_and_grouping())
    def test_error_non_increasing_in_groups(self, case):
        """Refining the partition (more groups) never increases the error."""
        matrix, rank, groups = case
        if groups in (1, 3):  # need a divisor chain; only test 2 -> 4
            return
        eps_more = group_reconstruction_error(matrix, group_decompose(matrix, rank, groups))
        eps_one = reconstruction_error(matrix, decompose(matrix, rank))
        assert eps_more <= eps_one + TOLERANCE

    @settings(max_examples=30, deadline=None)
    @given(matrix_and_grouping())
    def test_shared_left_reconstruction_equals_traditional(self, case):
        """The grouped writing of D(W) (Eq. 3) is numerically the same approximation."""
        matrix, rank, groups = case
        shared = shared_left_factors(matrix, rank, groups)
        traditional = decompose(matrix, rank)
        np.testing.assert_allclose(shared.reconstruct(), traditional.reconstruct(), atol=1e-8)


class TestGroupDecomposeMechanics:
    def test_split_columns_roundtrip(self, rng):
        matrix = rng.standard_normal((6, 12))
        blocks = split_columns(matrix, 3)
        np.testing.assert_allclose(np.concatenate(blocks, axis=1), matrix)

    def test_split_columns_invalid(self, rng):
        with pytest.raises(ValueError):
            split_columns(rng.standard_normal((6, 10)), 3)
        with pytest.raises(ValueError):
            split_columns(rng.standard_normal((6, 10)), 0)
        with pytest.raises(ValueError):
            split_columns(rng.standard_normal(10), 2)

    def test_group_factors_properties(self, rng):
        matrix = rng.standard_normal((8, 12))
        factors = group_decompose(matrix, rank=2, groups=3)
        assert factors.groups == 3
        assert factors.rank == 2
        assert factors.shape == (8, 12)
        assert factors.parameter_count == 3 * (8 * 2 + 2 * 4)

    def test_stacked_left_and_block_diagonal_shapes(self, rng):
        matrix = rng.standard_normal((8, 12))
        factors = group_decompose(matrix, rank=2, groups=3)
        assert factors.stacked_left().shape == (8, 6)
        assert factors.block_diagonal_right().shape == (6, 12)

    def test_stacked_times_blockdiag_equals_reconstruction(self, rng):
        matrix = rng.standard_normal((8, 12))
        factors = group_decompose(matrix, rank=2, groups=3)
        np.testing.assert_allclose(
            factors.stacked_left() @ factors.block_diagonal_right(),
            factors.reconstruct(),
            atol=1e-10,
        )

    def test_block_diagonal_has_zero_off_blocks(self, rng):
        matrix = rng.standard_normal((8, 12))
        factors = group_decompose(matrix, rank=2, groups=3)
        block_diag = factors.block_diagonal_right()
        # Rows of group 0 must be zero outside the first column block.
        assert np.all(block_diag[:2, 4:] == 0)

    def test_single_group_equals_traditional(self, rng):
        matrix = rng.standard_normal((8, 12))
        grouped = group_decompose(matrix, rank=3, groups=1)
        traditional = decompose(matrix, 3)
        np.testing.assert_allclose(grouped.reconstruct(), traditional.reconstruct(), atol=1e-10)

    def test_compression_ratio(self, rng):
        matrix = rng.standard_normal((16, 32))
        factors = group_decompose(matrix, rank=2, groups=2)
        dense = 16 * 32
        assert factors.compression_ratio() == pytest.approx(dense / factors.parameter_count)

    def test_relative_error_bounds(self, rng):
        matrix = rng.standard_normal((10, 20))
        factors = group_decompose(matrix, rank=2, groups=2)
        assert 0 <= group_relative_error(matrix, factors) <= 1

    def test_error_shape_mismatch_raises(self, rng):
        factors = group_decompose(rng.standard_normal((10, 20)), rank=2, groups=2)
        with pytest.raises(ValueError):
            group_reconstruction_error(rng.standard_normal((10, 18)), factors)

    def test_empty_group_factors_rejected(self):
        with pytest.raises(ValueError):
            GroupLowRankFactors(tuple())

    def test_mismatched_rows_rejected(self, rng):
        a = decompose(rng.standard_normal((8, 6)), 2)
        b = decompose(rng.standard_normal((6, 6)), 2)
        with pytest.raises(ValueError):
            GroupLowRankFactors((a, b))
