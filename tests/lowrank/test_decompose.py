"""Tests for the truncated-SVD decomposition utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank.decompose import (
    LowRankFactors,
    decompose,
    optimal_rank_for_error,
    parameter_count,
    rank_for_compression_ratio,
    reconstruction_error,
    relative_error,
    singular_value_energy,
    truncated_svd,
)


class TestTruncatedSVD:
    def test_shapes(self, rng):
        matrix = rng.standard_normal((8, 20))
        u, s, vt = truncated_svd(matrix, 3)
        assert u.shape == (8, 3)
        assert s.shape == (3,)
        assert vt.shape == (3, 20)

    def test_full_rank_reconstructs_exactly(self, rng):
        matrix = rng.standard_normal((6, 9))
        u, s, vt = truncated_svd(matrix, 6)
        np.testing.assert_allclose((u * s) @ vt, matrix, atol=1e-10)

    def test_rank_clamped_to_matrix_rank(self, rng):
        matrix = rng.standard_normal((4, 5))
        u, s, vt = truncated_svd(matrix, 100)
        assert s.shape == (4,)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            truncated_svd(rng.standard_normal((3, 3, 3)), 2)
        with pytest.raises(ValueError):
            truncated_svd(rng.standard_normal((3, 3)), 0)


class TestDecompose:
    def test_factor_shapes(self, rng):
        factors = decompose(rng.standard_normal((8, 20)), 3)
        assert factors.left.shape == (8, 3)
        assert factors.right.shape == (3, 20)
        assert factors.rank == 3
        assert factors.shape == (8, 20)

    def test_optimality_against_random_factors(self, rng):
        """Eckart–Young: the SVD factorization beats any random factorization."""
        matrix = rng.standard_normal((10, 15))
        svd_factors = decompose(matrix, 4)
        random_factors = LowRankFactors(
            left=rng.standard_normal((10, 4)), right=rng.standard_normal((4, 15))
        )
        assert reconstruction_error(matrix, svd_factors) <= reconstruction_error(matrix, random_factors)

    def test_error_decreases_with_rank(self, rng):
        matrix = rng.standard_normal((12, 18))
        errors = [reconstruction_error(matrix, decompose(matrix, k)) for k in (1, 3, 6, 12)]
        assert all(errors[i] >= errors[i + 1] - 1e-12 for i in range(len(errors) - 1))

    def test_exact_for_low_rank_matrix(self, rng):
        left = rng.standard_normal((9, 2))
        right = rng.standard_normal((2, 14))
        matrix = left @ right
        factors = decompose(matrix, 2)
        assert reconstruction_error(matrix, factors) < 1e-10

    def test_parameter_count_and_ratio(self, rng):
        factors = decompose(rng.standard_normal((16, 32)), 4)
        assert factors.parameter_count == 16 * 4 + 4 * 32
        assert factors.compression_ratio() == pytest.approx((16 * 32) / (16 * 4 + 4 * 32))

    def test_error_method_matches_function(self, rng):
        matrix = rng.standard_normal((6, 8))
        factors = decompose(matrix, 2)
        assert factors.error(matrix) == pytest.approx(reconstruction_error(matrix, factors))

    def test_mismatched_shapes_raise(self, rng):
        factors = decompose(rng.standard_normal((6, 8)), 2)
        with pytest.raises(ValueError):
            reconstruction_error(rng.standard_normal((5, 8)), factors)

    def test_invalid_factor_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            LowRankFactors(left=rng.standard_normal((4, 3)), right=rng.standard_normal((2, 5)))


class TestErrorMetrics:
    def test_relative_error_normalization(self, rng):
        matrix = rng.standard_normal((8, 8))
        factors = decompose(matrix, 2)
        rel = relative_error(matrix, factors)
        assert 0 <= rel <= 1
        assert rel == pytest.approx(reconstruction_error(matrix, factors) / np.linalg.norm(matrix))

    def test_relative_error_of_zero_matrix(self):
        matrix = np.zeros((4, 4))
        factors = decompose(matrix, 1)
        assert relative_error(matrix, factors) == 0.0

    def test_singular_value_energy_monotone(self, rng):
        energy = singular_value_energy(rng.standard_normal((10, 10)))
        assert np.all(np.diff(energy) >= -1e-12)
        assert energy[-1] == pytest.approx(1.0)

    def test_optimal_rank_for_error(self, rng):
        left = rng.standard_normal((12, 3))
        right = rng.standard_normal((3, 12))
        matrix = left @ right
        assert optimal_rank_for_error(matrix, 1e-9) <= 3
        assert optimal_rank_for_error(matrix, 1.0) == 1

    def test_optimal_rank_validates_input(self, rng):
        with pytest.raises(ValueError):
            optimal_rank_for_error(rng.standard_normal((4, 4)), 1.5)


class TestBudgetHelpers:
    def test_rank_for_compression_ratio(self):
        rank = rank_for_compression_ratio((64, 576), ratio=4.0)
        assert rank >= 1
        assert rank * (64 + 576) <= 64 * 576 / 4.0

    def test_rank_for_ratio_minimum_one(self):
        assert rank_for_compression_ratio((4, 4), ratio=100.0) == 1

    def test_rank_for_ratio_invalid(self):
        with pytest.raises(ValueError):
            rank_for_compression_ratio((4, 4), ratio=0)

    def test_parameter_count_grouped(self):
        assert parameter_count((16, 36), rank=4, groups=1) == 16 * 4 + 4 * 36
        assert parameter_count((16, 36), rank=4, groups=4) == 4 * 16 * 4 + 4 * 36

    def test_parameter_count_invalid_groups(self):
        with pytest.raises(ValueError):
            parameter_count((16, 36), rank=4, groups=5)
        with pytest.raises(ValueError):
            parameter_count((16, 36), rank=4, groups=0)
