"""Theorem 2: ``D(SDK(W)) = (I_N ⊗ L) · SDK(R)`` — exact identity tests.

The identity is exact for *any* factor pair (L, R) because the SDK operator is
a linear transformation of the rows of its argument; these property-based
tests verify it for random geometries, windows, ranks and factor choices, and
check the grouped extension used by the proposed method.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowrank.decompose import decompose
from repro.lowrank.group import group_decompose
from repro.lowrank.sdk_lowrank import (
    kron_identity,
    sdk_group_lowrank_factors,
    sdk_lowrank_factors,
    verify_theorem2,
)
from repro.mapping.geometry import ConvGeometry
from repro.mapping.sdk import ParallelWindow, SDKMapping

ATOL = 1e-9


@st.composite
def geometry_window_rank(draw):
    """Random (geometry, window, rank, groups) with compatible dimensions."""
    groups = draw(st.sampled_from([1, 2, 4]))
    in_channels = groups * draw(st.integers(min_value=1, max_value=3))
    out_channels = draw(st.integers(min_value=2, max_value=10))
    kernel = draw(st.sampled_from([2, 3]))
    extra_h = draw(st.integers(min_value=1, max_value=3))
    extra_w = draw(st.integers(min_value=1, max_value=3))
    input_size = kernel + max(extra_h, extra_w) + draw(st.integers(min_value=1, max_value=4))
    geometry = ConvGeometry(
        in_channels=in_channels,
        out_channels=out_channels,
        kernel_h=kernel,
        kernel_w=kernel,
        input_h=input_size,
        input_w=input_size,
        stride=1,
        padding=1,
        name="prop",
    )
    window = ParallelWindow(kernel + extra_h, kernel + extra_w)
    max_rank = min(out_channels, (in_channels // groups) * kernel * kernel)
    rank = draw(st.integers(min_value=1, max_value=max_rank))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return geometry, window, rank, groups, seed


class TestTheorem2Property:
    @settings(max_examples=40, deadline=None)
    @given(geometry_window_rank())
    def test_identity_with_svd_factors(self, case):
        geometry, window, rank, _groups, seed = case
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((geometry.m, geometry.n))
        mapping = SDKMapping(geometry, window)
        assert verify_theorem2(weight, mapping, rank, atol=ATOL)

    @settings(max_examples=40, deadline=None)
    @given(geometry_window_rank())
    def test_identity_with_arbitrary_factors(self, case):
        """The identity is linear-algebraic: it holds for non-SVD factors too."""
        geometry, window, rank, _groups, seed = case
        rng = np.random.default_rng(seed)
        left = rng.standard_normal((geometry.m, rank))
        right = rng.standard_normal((rank, geometry.n))
        mapping = SDKMapping(geometry, window)
        lhs = mapping.apply(left @ right)
        rhs = kron_identity(left, mapping.num_parallel_outputs) @ mapping.apply(right)
        np.testing.assert_allclose(lhs, rhs, atol=ATOL)

    @settings(max_examples=30, deadline=None)
    @given(geometry_window_rank())
    def test_grouped_identity(self, case):
        """Grouped variant: SDK(D_g(W)) == (I_N ⊗ [L_1…L_g]) · SDK(blockdiag(R_i))."""
        geometry, window, rank, groups, seed = case
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((geometry.m, geometry.n))
        mapping = SDKMapping(geometry, window)
        built = sdk_group_lowrank_factors(weight, mapping, rank, groups)
        grouped = group_decompose(weight, rank, groups)
        lhs = mapping.apply(grouped.reconstruct())
        np.testing.assert_allclose(built.reconstructed_sdk_matrix, lhs, atol=ATOL)

    @settings(max_examples=30, deadline=None)
    @given(geometry_window_rank())
    def test_stage_shapes(self, case):
        geometry, window, rank, groups, seed = case
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((geometry.m, geometry.n))
        mapping = SDKMapping(geometry, window)
        built = sdk_group_lowrank_factors(weight, mapping, rank, groups)
        n_par = mapping.num_parallel_outputs
        assert built.stage1_shape == (n_par * groups * rank, mapping.flattened_window_size)
        assert built.stage2_shape == (n_par * geometry.m, n_par * groups * rank)


class TestKronIdentity:
    def test_matches_numpy_kron(self, rng):
        block = rng.standard_normal((3, 2))
        np.testing.assert_allclose(kron_identity(block, 3), np.kron(np.eye(3), block))

    def test_single_copy_is_block(self, rng):
        block = rng.standard_normal((4, 4))
        np.testing.assert_allclose(kron_identity(block, 1), block)

    def test_invalid_copies(self, rng):
        with pytest.raises(ValueError):
            kron_identity(rng.standard_normal((2, 2)), 0)

    def test_block_diagonal_structure(self, rng):
        block = rng.standard_normal((2, 3))
        result = kron_identity(block, 2)
        assert np.all(result[:2, 3:] == 0)
        assert np.all(result[2:, :3] == 0)


class TestSDKLowRankMapping:
    def test_ungrouped_factory(self, small_geometry, rng):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        weight = rng.standard_normal((small_geometry.m, small_geometry.n))
        built = sdk_lowrank_factors(weight, mapping, rank=2)
        assert built.groups == 1
        assert built.rank == 2
        assert built.num_parallel_outputs == 4

    def test_stored_parameters_exclude_structural_zeros(self, small_geometry, rng):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        weight = rng.standard_normal((small_geometry.m, small_geometry.n))
        built = sdk_lowrank_factors(weight, mapping, rank=2)
        dense_stage2 = built.stage2.size
        assert built.stored_parameters < built.stage1.size + dense_stage2

    def test_reconstruction_error_bounded_by_decomposition(self, small_geometry, rng):
        """The SDK-mapped factors approximate SDK(W) exactly as well as LR approximates W per window."""
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        weight = rng.standard_normal((small_geometry.m, small_geometry.n))
        built = sdk_lowrank_factors(weight, mapping, rank=4)
        factors = decompose(weight, 4)
        direct_error = np.linalg.norm(mapping.apply(weight) - mapping.apply(factors.reconstruct()))
        mapped_error = np.linalg.norm(mapping.apply(weight) - built.reconstructed_sdk_matrix)
        assert mapped_error == pytest.approx(direct_error, rel=1e-9, abs=1e-9)
