"""Precision-policy-aware assertion helpers for the engine equivalence suites.

The equivalence suites run in CI under every registered execution backend
(``REPRO_BACKEND=numpy64|threaded|numpy32``).  Everything *deterministic*
(programmed conductances, stored matrices, tile counts, energies) stays
bit-identical under every backend — the precision policy governs execution
arithmetic only — so those assertions need no relaxation.  Analog *output*
comparisons against the float64 oracle use the active policy's documented
tolerance envelope (see :class:`repro.backend.PrecisionPolicy` and ENGINE.md):
BLAS associativity bounds for the bit-identical float64 family, the float32
envelope in numpy32 tolerance mode.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_backend


def active_policy():
    return active_backend().policy


def assert_outputs_match(
    actual: np.ndarray, reference: np.ndarray, slack: float = 1.0
) -> None:
    """Analog outputs agree within the active precision policy's envelope.

    ``slack`` widens the envelope for comparisons that chain more reductions
    than a single MVM (e.g. the two-stage low-rank pipeline).
    """
    policy = active_policy()
    scale = float(np.max(np.abs(reference))) or 1.0
    np.testing.assert_allclose(
        np.asarray(actual, dtype=np.float64),
        np.asarray(reference, dtype=np.float64),
        rtol=policy.output_rtol * slack,
        atol=policy.output_atol * scale * slack,
    )


def assert_quantized_outputs_match(
    actual: np.ndarray, reference: np.ndarray, output_bits: int
) -> None:
    """ADC-quantized outputs: ≤ one ADC step anywhere, working-precision nearly everywhere.

    A value landing exactly on an ADC rounding tie may flip by one
    quantization step (under float32 that tie band widens to the policy's
    ``quantized_step_slack``); away from ties the outputs must agree to the
    policy's associativity level on at least 99% of entries.
    """
    policy = active_policy()
    actual = np.asarray(actual, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    diff = np.abs(actual - reference)
    scale = float(np.abs(reference).max())
    step = scale / (2**output_bits - 1) + 1e-12
    assert diff.max() <= step * (1.0 + policy.quantized_step_slack)
    assert (diff <= scale * policy.associativity_rtol).mean() > 0.99
