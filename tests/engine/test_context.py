"""Tests for the pipeline layer: ExecutionContext, LayerPlan, decomposition cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import active_backend
from repro.engine.cache import DecompositionCache, matrix_fingerprint
from repro.engine.context import ExecutionContext
from repro.imc.peripherals import CellSpec, PeripheralSuite
from repro.imc.simulator import IMCSimulator
from repro.lowrank.decompose import decompose
from repro.lowrank.group import group_decompose
from repro.mapping.geometry import ArrayDims, ConvGeometry

from .precision_helpers import assert_outputs_match

HIGH_PRECISION = PeripheralSuite(cell=CellSpec(conductance_levels=4096))


class TestDecompositionCache:
    def test_cached_decompose_bit_identical_to_direct(self, rng):
        cache = DecompositionCache()
        matrix = rng.standard_normal((24, 36))
        # The direct reference runs at the active compute precision (cast
        # first), so the bit-identity holds under every backend.
        reference = active_backend().asarray(matrix)
        for rank in (1, 4, 12, 24):
            cached = cache.decompose(matrix, rank)
            direct = decompose(reference, rank)
            np.testing.assert_array_equal(cached.left, direct.left)
            np.testing.assert_array_equal(cached.right, direct.right)

    def test_cached_group_decompose_bit_identical(self, rng):
        cache = DecompositionCache()
        matrix = rng.standard_normal((16, 40))
        reference = active_backend().asarray(matrix)
        for rank, groups in ((2, 1), (4, 2), (8, 4)):
            cached = cache.group_decompose(matrix, rank, groups)
            direct = group_decompose(reference, rank, groups)
            np.testing.assert_array_equal(cached.reconstruct(), direct.reconstruct())

    def test_rank_sweep_costs_one_svd(self, rng):
        cache = DecompositionCache()
        matrix = rng.standard_normal((20, 20))
        for rank in (1, 2, 5, 10, 20):
            cache.decompose(matrix, rank)
        assert cache.misses == 1
        assert cache.hits == 4

    def test_content_addressing_hits_equal_matrices(self, rng):
        cache = DecompositionCache()
        matrix = rng.standard_normal((8, 8))
        cache.decompose(matrix.copy(), 2)
        cache.decompose(matrix.copy(), 2)
        assert cache.misses == 1 and cache.hits == 1

    def test_fingerprint_distinguishes_content_and_shape(self, rng):
        a = rng.standard_normal((4, 6))
        assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())
        assert matrix_fingerprint(a) != matrix_fingerprint(a + 1e-12)
        assert matrix_fingerprint(a) != matrix_fingerprint(a.reshape(6, 4))

    def test_invalid_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            DecompositionCache().decompose(rng.standard_normal((4, 4)), 0)

    def test_clear(self, rng):
        cache = DecompositionCache()
        cache.decompose(rng.standard_normal((4, 4)), 2)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


class TestExecutionContext:
    def test_rejects_unknown_engine(self, small_array):
        with pytest.raises(ValueError):
            ExecutionContext(array=small_array, engine="quantum")

    def test_dense_plan_matches_legacy_simulator(self, rng, small_array):
        """Batched and legacy engines agree through the full dense pipeline."""
        matrix = rng.standard_normal((16, 40))
        inputs = rng.standard_normal((5, 40))
        results = {}
        for engine in ("batched", "legacy"):
            ctx = ExecutionContext(
                array=small_array, peripherals=HIGH_PRECISION, seed=1, engine=engine
            )
            results[engine] = ctx.dense_plan(matrix).run(inputs)
        assert_outputs_match(results["batched"].outputs, results["legacy"].outputs)
        assert results["batched"].allocated_tiles == results["legacy"].allocated_tiles
        assert results["batched"].activations == results["legacy"].activations
        assert results["batched"].energy_pj == results["legacy"].energy_pj
        np.testing.assert_array_equal(results["batched"].exact, results["legacy"].exact)

    def test_lowrank_plan_matches_legacy_simulator(self, rng, small_array):
        matrix = rng.standard_normal((16, 40))
        inputs = rng.standard_normal((4, 40))
        results = {}
        for engine in ("batched", "legacy"):
            ctx = ExecutionContext(
                array=small_array, peripherals=HIGH_PRECISION, seed=1, engine=engine
            )
            results[engine] = ctx.lowrank_plan(matrix, rank=4, groups=2).run(inputs)
        assert_outputs_match(
            results["batched"].outputs, results["legacy"].outputs, slack=10.0
        )
        assert results["batched"].allocated_tiles == results["legacy"].allocated_tiles
        assert results["batched"].energy_pj == results["legacy"].energy_pj
        assert results["batched"].method == results["legacy"].method == "lowrank(g=2,k=4)"

    def test_conv_plan_consumes_nchw_inputs(self, rng, small_array):
        geometry = ConvGeometry(2, 4, 3, 3, 6, 6, stride=1, padding=1)
        weight = rng.standard_normal((4, 2, 3, 3))
        inputs = rng.standard_normal((2, 2, 6, 6))
        ctx = ExecutionContext(array=small_array, peripherals=HIGH_PRECISION)
        result = ctx.conv_dense_plan(weight, geometry).run(inputs)
        assert result.outputs.shape == (2 * 36, 4)
        assert result.relative_error < 0.05

    def test_plan_reuse_across_batches(self, rng, small_array):
        """A plan programs tiles once; each run only executes (and counts) MVMs."""
        ctx = ExecutionContext(array=small_array, peripherals=HIGH_PRECISION)
        plan = ctx.dense_plan(rng.standard_normal((16, 40)))
        first = plan.run(rng.standard_normal((3, 40)))
        second = plan.run(rng.standard_normal((2, 40)))
        assert first.activations == 3 * plan.allocated_tiles
        assert second.activations == 5 * plan.allocated_tiles  # cumulative counter

    def test_decompositions_shared_across_contexts(self, rng):
        """Sweeping array sizes reuses the same cached SVDs."""
        cache = DecompositionCache()
        matrix = rng.standard_normal((16, 40))
        for size in (32, 64, 128):
            ctx = ExecutionContext(array=ArrayDims.square(size), decompositions=cache)
            ctx.lowrank_plan(matrix, rank=4, groups=2)
        assert cache.misses == 2  # one SVD per column block, shared by all sizes
        assert cache.hits == 4

    def test_simulator_facade_engine_selection(self, rng, small_array):
        """IMCSimulator(engine=...) drives the same plans as the raw context."""
        matrix = rng.standard_normal((16, 40))
        inputs = rng.standard_normal((3, 40))
        batched = IMCSimulator(array=small_array, peripherals=HIGH_PRECISION, engine="batched")
        legacy = IMCSimulator(array=small_array, peripherals=HIGH_PRECISION, engine="legacy")
        rb = batched.run_dense(matrix, inputs)
        rl = legacy.run_dense(matrix, inputs)
        assert_outputs_match(rb.outputs, rl.outputs)
        assert rb.allocated_tiles == rl.allocated_tiles
        assert rb.energy_pj == rl.energy_pj
