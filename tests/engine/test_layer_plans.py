"""Plan constructors of the modern layer families: grouped, depthwise, attention.

Every family's plan must agree with the legacy per-tile float64 oracle (the
bit-identity reference of the paper networks' dense path), allocate exactly
the tiles the closed-form block-diagonal count predicts, and keep the batched
Monte-Carlo trials bit-identical to sequential per-trial contexts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.context import ExecutionContext
from repro.engine.kernels import im2col_columns
from repro.imc.peripherals import CellSpec, PeripheralSuite
from repro.imc.noise import NoiseModel
from repro.mapping.geometry import (
    ArrayDims,
    AttentionProjectionGeometry,
    GroupedConvGeometry,
)
from repro.mapping.grouped import expand_grouped_kernel, tiles_for_grouped_conv

from .precision_helpers import assert_outputs_match

HIGH_PRECISION = PeripheralSuite(cell=CellSpec(conductance_levels=4096))

GROUPED = GroupedConvGeometry(16, 16, 3, 3, 8, 8, stride=1, padding=1, name="g4", groups=4)
DEPTHWISE = GroupedConvGeometry(16, 16, 3, 3, 8, 8, stride=1, padding=1, name="dw", groups=16)
ATTENTION = AttentionProjectionGeometry.gemm(16, 16, 8, projections=3, name="qkv")


def _grouped_kernel(rng, geometry):
    return rng.standard_normal(
        (geometry.out_channels, geometry.group_in_channels, geometry.kernel_h, geometry.kernel_w)
    )


class TestGroupedPlans:
    @pytest.mark.parametrize("geometry", [GROUPED, DEPTHWISE], ids=["grouped", "depthwise"])
    def test_plan_matches_legacy_oracle(self, rng, small_array, geometry):
        kernel = _grouped_kernel(rng, geometry)
        inputs = rng.standard_normal((5, geometry.n))
        results = {}
        for engine in ("batched", "legacy"):
            ctx = ExecutionContext(
                array=small_array, peripherals=HIGH_PRECISION, seed=3, engine=engine
            )
            results[engine] = ctx.grouped_conv_plan(kernel, geometry).run(inputs)
        assert_outputs_match(results["batched"].outputs, results["legacy"].outputs)
        assert results["batched"].allocated_tiles == results["legacy"].allocated_tiles
        assert results["batched"].energy_pj == results["legacy"].energy_pj
        np.testing.assert_array_equal(results["batched"].exact, results["legacy"].exact)

    @pytest.mark.parametrize("geometry", [GROUPED, DEPTHWISE], ids=["grouped", "depthwise"])
    def test_allocation_matches_closed_form(self, rng, small_array, geometry):
        ctx = ExecutionContext(array=small_array, seed=0)
        plan = ctx.grouped_conv_plan(_grouped_kernel(rng, geometry), geometry)
        assert plan.allocated_tiles == tiles_for_grouped_conv(geometry, small_array)

    def test_method_names(self, rng, small_array):
        ctx = ExecutionContext(array=small_array)
        assert ctx.grouped_conv_plan(_grouped_kernel(rng, GROUPED), GROUPED).method == "grouped(g=4)"
        assert ctx.grouped_conv_plan(_grouped_kernel(rng, DEPTHWISE), DEPTHWISE).method == "depthwise"

    def test_exact_reference_is_block_diagonal(self, rng, small_array):
        kernel = _grouped_kernel(rng, GROUPED)
        ctx = ExecutionContext(array=small_array, peripherals=HIGH_PRECISION)
        plan = ctx.grouped_conv_plan(kernel, GROUPED)
        np.testing.assert_array_equal(
            plan.exact_matrix, expand_grouped_kernel(kernel, GROUPED)
        )

    def test_plan_consumes_nchw_inputs(self, rng, small_array):
        kernel = _grouped_kernel(rng, GROUPED)
        ctx = ExecutionContext(array=small_array, peripherals=HIGH_PRECISION, seed=2)
        plan = ctx.grouped_conv_plan(kernel, GROUPED)
        feature_maps = rng.standard_normal((2, GROUPED.in_channels, 8, 8))
        from_maps = plan.run(feature_maps)
        from_columns = plan.run(im2col_columns(feature_maps, GROUPED))
        np.testing.assert_array_equal(from_maps.outputs, from_columns.outputs)

    def test_monte_carlo_trials_match_sequential_contexts(self, rng, small_array):
        kernel = _grouped_kernel(rng, GROUPED)
        inputs = rng.standard_normal((4, GROUPED.n))
        ctx = ExecutionContext(
            array=small_array,
            peripherals=HIGH_PRECISION,
            noise=NoiseModel(conductance_sigma=0.05),
            seed=7,
        )
        mc = ctx.grouped_conv_monte_carlo_plan(kernel, GROUPED, trials=3)
        result = mc.run(inputs)
        for trial in range(3):
            sequential = ctx.trial_context(trial).grouped_conv_plan(kernel, GROUPED)
            np.testing.assert_array_equal(result.outputs[trial], sequential.run(inputs).outputs)
        np.testing.assert_array_equal(result.exact, inputs @ mc.exact_matrix.T)


class TestAttentionPlans:
    def test_plan_matches_legacy_oracle(self, rng, small_array):
        weights = [rng.standard_normal((16, 16)) for _ in range(3)]
        inputs = rng.standard_normal((5, ATTENTION.n))
        results = {}
        for engine in ("batched", "legacy"):
            ctx = ExecutionContext(
                array=small_array, peripherals=HIGH_PRECISION, seed=5, engine=engine
            )
            results[engine] = ctx.attention_projection_plan(weights, ATTENTION).run(inputs)
        assert_outputs_match(results["batched"].outputs, results["legacy"].outputs)
        assert results["batched"].allocated_tiles == results["legacy"].allocated_tiles
        assert results["batched"].energy_pj == results["legacy"].energy_pj

    def test_fused_matrix_equals_stacked_list(self, rng, small_array):
        weights = [rng.standard_normal((16, 16)) for _ in range(3)]
        fused = np.vstack(weights)
        inputs = rng.standard_normal((4, ATTENTION.n))
        ctx = ExecutionContext(array=small_array, peripherals=HIGH_PRECISION, seed=5)
        from_list = ctx.attention_projection_plan(weights, ATTENTION).run(inputs)
        from_fused = ctx.attention_projection_plan(fused, ATTENTION).run(inputs)
        np.testing.assert_array_equal(from_list.outputs, from_fused.outputs)
        np.testing.assert_array_equal(from_list.exact, from_fused.exact)

    def test_shape_validation(self, rng, small_array):
        ctx = ExecutionContext(array=small_array)
        with pytest.raises(ValueError):
            ctx.attention_projection_plan(rng.standard_normal((8, 16)), ATTENTION)
        with pytest.raises(ValueError):
            ctx.attention_monte_carlo_plan(rng.standard_normal((8, 16)), ATTENTION, trials=2)

    def test_method_names(self, rng, small_array):
        ctx = ExecutionContext(array=small_array)
        assert ctx.attention_projection_plan(
            rng.standard_normal((ATTENTION.m, ATTENTION.n)), ATTENTION
        ).method == "attention(p=3)"
        single = AttentionProjectionGeometry.gemm(16, 32, 8, name="proj")
        assert ctx.attention_projection_plan(
            rng.standard_normal((32, 16)), single
        ).method == "attention"

    def test_monte_carlo_trials_match_sequential_contexts(self, rng, small_array):
        weights = [rng.standard_normal((16, 16)) for _ in range(3)]
        inputs = rng.standard_normal((4, ATTENTION.n))
        ctx = ExecutionContext(
            array=small_array,
            peripherals=HIGH_PRECISION,
            noise=NoiseModel(conductance_sigma=0.05),
            seed=9,
        )
        result = ctx.attention_monte_carlo_plan(weights, ATTENTION, trials=3).run(inputs)
        for trial in range(3):
            sequential = ctx.trial_context(trial).attention_projection_plan(weights, ATTENTION)
            np.testing.assert_array_equal(result.outputs[trial], sequential.run(inputs).outputs)
