"""Equivalence tests: batched engine kernels vs. the per-element oracles.

The contract (see ENGINE.md): everything deterministic — programmed
conductances, stored matrices, tile counts, activation counts, energies and
the im2col unfolding — is *bit-for-bit identical* between the batched engine
and the legacy per-tile path under a fixed seed.  Analog MVM outputs agree up
to floating-point associativity (BLAS executes a batched matmul and a
per-vector matvec with different reduction orders), which these tests bound
at 1e-10 relative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.kernels import BatchedTiledMatrix, im2col_columns, im2col_columns_loop
from repro.imc.bitslicing import BitSlicedMatrix
from repro.imc.noise import NoiseModel
from repro.imc.tiles import TiledMatrix, iter_tile_blocks
from repro.lowrank.group import group_decompose
from repro.mapping.geometry import ArrayDims, ConvGeometry

from .precision_helpers import assert_outputs_match, assert_quantized_outputs_match

NOISE_MODELS = {
    "ideal": NoiseModel.ideal(),
    "typical": NoiseModel.typical(),
    "harsh": NoiseModel(conductance_sigma=0.3, stuck_at_rate=0.01, ir_drop_severity=0.1),
    # Single-mechanism models: stuck-at faults and IR drop each consume the
    # per-tile RNG streams differently than conductance variation, so the
    # batched/per-tile equivalence is asserted for each path in isolation.
    "faults_only": NoiseModel(stuck_at_rate=0.03),
    "ir_drop_only": NoiseModel(ir_drop_severity=0.08),
}


# assert_outputs_match lives in precision_helpers: outputs are compared within
# the ACTIVE precision policy's envelope, so this suite doubles as the
# numpy32 tolerance-mode parity suite in CI.


class TestIm2colEquivalence:
    @pytest.mark.parametrize(
        "in_c,kh,kw,h,w,stride,padding",
        [
            (3, 3, 3, 8, 8, 1, 0),
            (3, 3, 3, 8, 8, 1, 1),
            (2, 3, 3, 9, 7, 2, 1),
            (4, 5, 5, 12, 12, 2, 2),
            (1, 1, 1, 6, 6, 1, 0),
            (2, 1, 1, 7, 5, 2, 0),
            (2, 3, 1, 8, 8, 1, 1),
            (3, 3, 3, 10, 10, 3, 1),
        ],
    )
    def test_vectorized_matches_loop_exactly(self, rng, in_c, kh, kw, h, w, stride, padding):
        geometry = ConvGeometry(in_c, 4, kh, kw, h, w, stride=stride, padding=padding)
        inputs = rng.standard_normal((3, in_c, h, w))
        vectorized = im2col_columns(inputs, geometry)
        loop = im2col_columns_loop(inputs, geometry)
        assert vectorized.shape == loop.shape
        np.testing.assert_array_equal(vectorized, loop)

    def test_contiguous_output(self, rng, small_geometry):
        inputs = rng.standard_normal((1, 4, 8, 8))
        assert im2col_columns(inputs, small_geometry).flags["C_CONTIGUOUS"]

    def test_shape_mismatch_raises(self, rng, small_geometry):
        with pytest.raises(ValueError):
            im2col_columns(rng.standard_normal((1, 3, 8, 8)), small_geometry)
        with pytest.raises(ValueError):
            im2col_columns(rng.standard_normal((4, 8, 8)), small_geometry)


def build_pair(matrix, array, **kwargs):
    return (
        TiledMatrix(matrix, array, **kwargs),
        BatchedTiledMatrix(matrix, array, **kwargs),
    )


class TestBatchedTiledMatrixEquivalence:
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    def test_programmed_conductances_bit_identical(self, rng, small_array, noise_name):
        """Same seed → identical noise draws → identical stored matrices."""
        matrix = rng.standard_normal((40, 70))
        legacy, batched = build_pair(
            matrix, small_array, noise=NOISE_MODELS[noise_name], seed=7
        )
        np.testing.assert_array_equal(legacy.stored_matrix(), batched.stored_matrix())

    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    @pytest.mark.parametrize("shape", [(40, 70), (16, 16), (1, 100), (100, 1), (33, 65)])
    def test_outputs_match(self, rng, small_array, noise_name, shape):
        matrix = rng.standard_normal(shape)
        legacy, batched = build_pair(
            matrix, small_array, noise=NOISE_MODELS[noise_name], seed=11
        )
        inputs = rng.standard_normal((5, shape[1]))
        assert_outputs_match(batched.mvm_batch(inputs), legacy.mvm_batch(inputs))

    def test_discrete_accounting_identical(self, rng, small_array):
        matrix = rng.standard_normal((40, 70))
        legacy, batched = build_pair(matrix, small_array, noise=NoiseModel.typical(), seed=3)
        assert legacy.num_allocated_tiles == batched.num_allocated_tiles
        assert legacy.grid_shape == batched.grid_shape
        assert legacy.logical_shape == batched.logical_shape
        assert legacy.activation_energy_pj() == batched.activation_energy_pj()
        inputs = rng.standard_normal((4, 70))
        legacy.mvm_batch(inputs)
        batched.mvm_batch(inputs)
        assert legacy.total_activations == batched.total_activations

    def test_block_diagonal_zero_tiles_skipped(self, rng, small_array):
        """Structurally-zero tiles of stage-1 matrices are never allocated."""
        factors = group_decompose(rng.standard_normal((64, 64)), rank=32, groups=2)
        block_diag = factors.block_diagonal_right()
        legacy, batched = build_pair(block_diag, small_array)
        assert batched.num_allocated_tiles == legacy.num_allocated_tiles == 2
        inputs = rng.standard_normal((3, 64))
        assert_outputs_match(batched.mvm_batch(inputs), legacy.mvm_batch(inputs))

    def test_skip_zero_tiles_disabled(self, small_array):
        zero = np.zeros((40, 40))
        batched = BatchedTiledMatrix(zero, small_array, skip_zero_tiles=False)
        assert batched.num_allocated_tiles == 4
        assert BatchedTiledMatrix(zero, small_array).num_allocated_tiles == 0

    def test_single_vector_mvm(self, rng, small_array):
        matrix = rng.standard_normal((20, 40))
        legacy, batched = build_pair(matrix, small_array, seed=5)
        x = rng.standard_normal(40)
        assert_outputs_match(batched.mvm(x), legacy.mvm(x))

    def test_quantized_paths_agree(self, rng, small_array):
        """DAC/ADC quantization: identical arithmetic, same per-tile scales.

        A 1-ulp difference in the analog currents can land on an ADC rounding
        boundary, so quantized outputs are compared up to one ADC step on a
        vanishing fraction of entries.
        """
        matrix = rng.standard_normal((40, 70))
        legacy, batched = build_pair(
            matrix, small_array, noise=NoiseModel.typical(), input_bits=6, output_bits=6, seed=2
        )
        inputs = rng.standard_normal((8, 70))
        out_l = legacy.mvm_batch(inputs)
        out_b = batched.mvm_batch(inputs)
        assert_quantized_outputs_match(out_b, out_l, output_bits=6)

    def test_invalid_inputs_raise(self, rng, small_array):
        batched = BatchedTiledMatrix(rng.standard_normal((20, 40)), small_array)
        with pytest.raises(ValueError):
            batched.mvm(np.ones(39))
        with pytest.raises(ValueError):
            batched.mvm_batch(np.ones((2, 39)))
        with pytest.raises(ValueError):
            batched.mvm_batch(np.ones(40))
        with pytest.raises(ValueError):
            BatchedTiledMatrix(rng.standard_normal(10), small_array)


class TestTileLayout:
    def test_allocation_order_is_row_major(self, rng, small_array):
        matrix = rng.standard_normal((40, 70))
        blocks = iter_tile_blocks(matrix, small_array)
        coords = [(b.tile_row, b.tile_col) for b in blocks]
        assert coords == sorted(coords)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_zero_blocks_share_seed_stream(self, rng, small_array):
        """Skipping a zero tile shifts later seeds identically in both paths."""
        matrix = rng.standard_normal((40, 70))
        matrix[:32, :32] = 0.0  # first tile of the grid is structurally zero
        legacy, batched = build_pair(matrix, small_array, noise=NoiseModel.typical(), seed=9)
        np.testing.assert_array_equal(legacy.stored_matrix(), batched.stored_matrix())


class TestBitSlicedBackends:
    @pytest.mark.parametrize("noise_name", ["ideal", "typical"])
    def test_backends_agree(self, rng, noise_name):
        array = ArrayDims(rows=32, cols=32, weight_bits=4, cell_bits=2)
        matrix = rng.standard_normal((12, 40))
        pertile = BitSlicedMatrix(
            matrix, array, noise=NOISE_MODELS[noise_name], seed=4, backend="pertile"
        )
        batched = BitSlicedMatrix(
            matrix, array, noise=NOISE_MODELS[noise_name], seed=4, backend="batched"
        )
        assert pertile.num_allocated_tiles == batched.num_allocated_tiles
        np.testing.assert_array_equal(pertile.quantized_matrix(), batched.quantized_matrix())
        assert pertile.activation_energy_pj() == batched.activation_energy_pj()
        inputs = rng.standard_normal((5, 40))
        assert_outputs_match(batched.mvm_batch(inputs), pertile.mvm_batch(inputs))

    def test_unknown_backend_rejected(self, rng, small_array):
        with pytest.raises(ValueError):
            BitSlicedMatrix(rng.standard_normal((4, 8)), small_array, backend="gpu")
