"""Tests for the experiment layer: registry, sweep mapping, JSON serialization."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

import repro.experiments  # noqa: F401 — populates the registry
import repro.experiments.runner as runner_module
from repro.engine.sweep import (
    ExperimentSpec,
    experiment_registry,
    map_sweep,
    register_experiment,
    run_experiments,
    to_jsonable,
)
from repro.experiments.fig6 import run_fig6
from repro.experiments.runner import run_all
from repro.experiments.table1 import run_table1


class TestRegistry:
    def test_paper_artefacts_registered(self):
        registry = experiment_registry()
        assert {"table1", "fig6", "fig7", "fig8", "fig9"} <= set(registry)

    def test_specs_format_and_serialize(self):
        registry = experiment_registry()
        result = run_table1(
            networks=("resnet20",), array_sizes=(64,), group_counts=(1,), rank_divisors=(2,)
        )
        text = registry["table1"].format(result)
        assert "Table I" in text
        document = registry["table1"].serialize(result)
        json.dumps(document)  # must be JSON-able
        assert document["rows"][0]["network"] == "resnet20"
        assert document["rows"][0]["cycles_with_sdk"]["64"] > 0  # int keys stringified

    def test_run_experiments_with_overrides(self):
        results = run_experiments(
            names=("table1",),
            overrides={
                "table1": {
                    "networks": ("resnet20",),
                    "array_sizes": (64,),
                    "group_counts": (1,),
                    "rank_divisors": (2, 4),
                }
            },
        )
        assert len(results["table1"].rows) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(names=("fig99",))

    def test_register_replaces_by_name(self):
        spec = ExperimentSpec(
            name="_test_dummy", title="dummy", runner=lambda: 1, formatter=lambda r, include_plots=False: str(r)
        )
        try:
            register_experiment(spec)
            assert experiment_registry()["_test_dummy"].run() == 1
        finally:
            experiment_registry()  # registry is a copy; remove via private handle
            from repro.engine import sweep as sweep_module

            sweep_module._REGISTRY.pop("_test_dummy", None)


class TestMapSweep:
    def test_serial_and_parallel_agree(self):
        points = [(i, i + 1) for i in range(20)]
        serial = map_sweep(lambda a, b: a * b, points)
        parallel = map_sweep(lambda a, b: a * b, points, parallel=True, max_workers=4)
        assert serial == parallel

    def test_bare_values_treated_as_single_argument(self):
        assert map_sweep(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_order_preserved_under_parallelism(self):
        import time

        def slow_then_fast(i):
            time.sleep(0.01 if i == 0 else 0.0)
            return i

        assert map_sweep(slow_then_fast, list(range(8)), parallel=True) == list(range(8))


class TestToJsonable:
    def test_dataclass_tree(self):
        @dataclasses.dataclass
        class Inner:
            values: dict

        @dataclasses.dataclass
        class Outer:
            name: str
            inner: Inner

        document = to_jsonable(Outer(name="x", inner=Inner(values={64: np.int64(3)})))
        assert document == {"name": "x", "inner": {"values": {"64": 3}}}
        json.dumps(document)

    def test_numpy_values(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]
        assert to_jsonable((np.bool_(True), [np.int32(2)])) == [True, [2]]


class TestRunnerIntegration:
    def test_run_all_arrays_restriction(self, monkeypatch):
        """`--arrays` reaches the Fig. 6 harness as its array_sizes override."""
        captured = {}

        def fake_run_experiments(
            names=None, overrides=None, parallel=False, max_workers=None, workers=None
        ):
            captured.update(overrides or {})
            return {name: None for name in names}

        monkeypatch.setattr(runner_module, "run_experiments", fake_run_experiments)
        suite = run_all(include_fig6_arrays=(64, 128))
        assert captured["fig6"] == {"array_sizes": (64, 128)}
        assert suite.table1 is None  # ExperimentSuite built from the stubbed results

    def test_fig6_array_sizes_flow_to_panels(self):
        result = run_fig6(
            networks=("resnet20",),
            array_sizes=(64,),
            group_counts=(1,),
            rank_divisors=(2,),
            pruning_entries=(8,),
        )
        assert [(p.network, p.array_size) for p in result.panels] == [("resnet20", 64)]

    def test_suite_to_json_structure(self):
        table1 = run_table1(
            networks=("resnet20",), array_sizes=(64,), group_counts=(1,), rank_divisors=(2,)
        )
        fig6 = run_fig6(
            networks=("resnet20",),
            array_sizes=(64,),
            group_counts=(1, 4),
            rank_divisors=(2, 8),
            pruning_entries=(4, 8),
        )
        from repro.experiments.fig7 import run_fig7
        from repro.experiments.fig8 import run_fig8
        from repro.experiments.fig9 import run_fig9
        from repro.experiments.runner import ExperimentSuite, suite_to_json

        suite = ExperimentSuite(
            table1=table1,
            fig6=fig6,
            fig7=run_fig7(networks=("resnet20",), array_sizes=(64,)),
            fig8=run_fig8(network="resnet20", array_sizes=(64,), group_counts=(1, 4), rank_divisors=(2, 8)),
            fig9=run_fig9(panels=(("resnet20", 64),), group_counts=(1, 4), rank_divisors=(2, 8, 16)),
        )
        document = suite_to_json(suite)
        json.dumps(document)
        assert set(document["experiments"]) == {"table1", "fig6", "fig7", "fig8", "fig9"}
        assert document["headline"]
        for name, payload in document["experiments"].items():
            assert payload["title"]
            assert payload["result"] is not None
