"""Incremental + sharded map_sweep semantics against a SweepCache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.sweep import ShardStats, SweepCache, map_sweep, parse_shard, shard_owns
from repro.store import ExperimentStore, experiment_fingerprint


@dataclass(frozen=True)
class CellResult:
    x: int
    y: int
    product: int


def cell_config(x: int, y: int):
    return {"x": x, "y": y}


class CountingFn:
    def __init__(self):
        self.calls: List[tuple] = []

    def __call__(self, x: int, y: int) -> CellResult:
        self.calls.append((x, y))
        return CellResult(x=x, y=y, product=x * y)


@pytest.fixture
def cache(tmp_path):
    return SweepCache(
        ExperimentStore(tmp_path / "store"), "test/cell", cell_config, CellResult
    )


POINTS = [(x, y) for x in range(3) for y in range(4)]


class TestIncrementalMapSweep:
    def test_second_run_computes_nothing(self, cache):
        fn = CountingFn()
        first = map_sweep(fn, POINTS, cache=cache)
        assert len(fn.calls) == len(POINTS)
        second = map_sweep(fn, POINTS, cache=cache)
        assert len(fn.calls) == len(POINTS), "warm sweep must not recompute"
        assert first == second
        assert cache.hits == len(POINTS)

    def test_partial_store_computes_only_missing_cells(self, cache):
        warm = POINTS[::2]
        map_sweep(CountingFn(), warm, cache=cache)
        fn = CountingFn()
        results = map_sweep(fn, POINTS, cache=cache)
        assert sorted(fn.calls) == sorted(POINTS[1::2])
        assert results == [CellResult(x, y, x * y) for x, y in POINTS]

    def test_order_preserved_with_mixed_hits_and_misses(self, cache):
        map_sweep(CountingFn(), POINTS[3:7], cache=cache)
        results = map_sweep(CountingFn(), POINTS, cache=cache, parallel=True, max_workers=3)
        assert [(r.x, r.y) for r in results] == POINTS

    def test_undecodable_payload_is_a_miss_not_a_crash(self, cache):
        """A checksum-valid artifact with a stale payload shape (structural
        change without a salt bump) must be dropped and recomputed."""
        point = POINTS[0]
        fingerprint = cache.fingerprint(point)
        cache.store.put(cache.kind, fingerprint, {"x": 0})  # missing fields
        fn = CountingFn()
        results = map_sweep(fn, [point], cache=cache)
        assert fn.calls == [point]
        assert results == [CellResult(0, 0, 0)]
        # The stale artifact was replaced by a decodable one.
        assert cache.store.get(cache.kind, fingerprint) == {"x": 0, "y": 0, "product": 0}

    def test_without_cache_behavior_unchanged(self):
        fn = CountingFn()
        results = map_sweep(fn, POINTS)
        assert results == [CellResult(x, y, x * y) for x, y in POINTS]
        with pytest.raises(ValueError):
            map_sweep(fn, POINTS, shard=(1, 2))


class TestShardedMapSweep:
    def test_shards_partition_the_grid(self, cache):
        n = 3
        owners = []
        for point in POINTS:
            fingerprint = cache.fingerprint(point)
            owners.append([k for k in range(1, n + 1) if shard_owns(fingerprint, k, n)])
        assert all(len(owner) == 1 for owner in owners), "each cell has exactly one owner"

    def test_sharded_runs_compose_and_resume(self, cache):
        fn = CountingFn()
        stats1 = map_sweep(fn, POINTS, cache=cache, shard=(1, 2))
        assert isinstance(stats1, ShardStats)
        assert stats1.computed + stats1.foreign == len(POINTS)
        assert stats1.resumed == 0

        # Re-running the same shard resumes everything.
        rerun = map_sweep(fn, POINTS, cache=cache, shard=(1, 2))
        assert rerun.computed == 0 and rerun.resumed == stats1.computed

        stats2 = map_sweep(fn, POINTS, cache=cache, shard=(2, 2))
        assert stats1.computed + stats2.computed == len(POINTS)
        assert sorted(fn.calls) == sorted(POINTS)

        # Assembly after both shards is a pure read.
        assembler = CountingFn()
        results = map_sweep(assembler, POINTS, cache=cache)
        assert assembler.calls == []
        assert results == [CellResult(x, y, x * y) for x, y in POINTS]

    def test_single_shard_owns_everything(self, cache):
        stats = map_sweep(CountingFn(), POINTS, cache=cache, shard=(1, 1))
        assert stats.computed == len(POINTS) and stats.foreign == 0


class TestShardSpec:
    def test_parse_shard_valid(self):
        assert parse_shard("1/4") == (1, 4)
        assert parse_shard("4/4") == (4, 4)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "x/4", "1", "1/0", "-1/4", "1/"])
    def test_parse_shard_invalid(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)

    @given(
        config=st.dictionaries(
            st.text(max_size=4), st.integers(-100, 100), max_size=4
        ),
        n=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_ownership_is_a_total_function_of_the_fingerprint(self, config, n):
        fingerprint = experiment_fingerprint("prop", config)
        owners = [k for k in range(1, n + 1) if shard_owns(fingerprint, k, n)]
        assert len(owners) == 1
