"""DecompositionCache LRU bound, eviction, and persistent spill regression tests.

The original cache grew without bound: every distinct (sub-)matrix pinned its
full thin SVD (three dense arrays) for the life of the process, so a long
scenario sweep slowly ate resident memory.  These tests pin the fix: a strict
LRU bound, recency-ordered eviction, and — with a store attached — spill
semantics that make eviction lossless (evicted factors reload bit-identically
from disk instead of recomputing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import active_backend
from repro.engine.cache import DEFAULT_SVD_CACHE_ENTRIES, DecompositionCache
from repro.store import ExperimentStore


def matrices(count: int, rng: np.random.Generator):
    return [rng.standard_normal((8, 6)) for _ in range(count)]


class TestLruBound:
    def test_entry_count_never_exceeds_maxsize(self, rng):
        cache = DecompositionCache(maxsize=4)
        for matrix in matrices(20, rng):
            cache.svd(matrix)
            assert len(cache) <= 4
        assert cache.evictions == 16

    def test_least_recently_used_is_evicted_first(self, rng):
        cache = DecompositionCache(maxsize=2)
        first, second, third = matrices(3, rng)
        cache.svd(first)
        cache.svd(second)
        cache.svd(first)          # refresh: first is now most-recent
        cache.svd(third)          # evicts second, not first
        misses = cache.misses
        cache.svd(first)
        assert cache.misses == misses, "refreshed entry must survive the eviction"
        cache.svd(second)
        assert cache.misses == misses + 1, "stale entry must have been evicted"

    def test_unbounded_mode_still_available(self, rng):
        cache = DecompositionCache(maxsize=None)
        for matrix in matrices(30, rng):
            cache.svd(matrix)
        assert len(cache) == 30 and cache.evictions == 0

    def test_default_cache_is_bounded(self):
        assert DecompositionCache().maxsize == DEFAULT_SVD_CACHE_ENTRIES

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DecompositionCache(maxsize=0)

    def test_eviction_does_not_change_results(self, rng):
        bounded = DecompositionCache(maxsize=1)
        unbounded = DecompositionCache(maxsize=None)
        mats = matrices(6, rng)
        for _ in range(2):  # second pass re-misses everything in the bounded cache
            for matrix in mats:
                left = bounded.decompose(matrix, 3)
                right = unbounded.decompose(matrix, 3)
                assert np.array_equal(left.left, right.left)
                assert np.array_equal(left.right, right.right)

    def test_concurrent_hits_and_evictions_do_not_race(self, rng):
        """map_sweep shares the default cache across a thread pool; the LRU
        bookkeeping (move_to_end racing popitem) must never raise."""
        from concurrent.futures import ThreadPoolExecutor

        cache = DecompositionCache(maxsize=2)
        mats = matrices(8, rng)

        def hammer(offset: int) -> None:
            for index in range(200):
                cache.svd(mats[(index + offset) % len(mats)])

        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(hammer, worker) for worker in range(4)]:
                future.result()  # raises if any worker hit a race
        assert len(cache) <= 2

    def test_clear_resets_counters(self, rng):
        cache = DecompositionCache(maxsize=2)
        for matrix in matrices(4, rng):
            cache.svd(matrix)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == cache.evictions == cache.store_hits == 0


class TestStoreSpill:
    def test_evicted_svd_reloads_from_store_bit_identically(self, tmp_path, rng):
        store = ExperimentStore(tmp_path / "store")
        cache = DecompositionCache(maxsize=1)
        cache.attach_store(store)
        first, second = matrices(2, rng)
        u0, s0, vt0 = cache.svd(first)
        cache.svd(second)                       # evicts first from memory
        misses = cache.misses
        u1, s1, vt1 = cache.svd(first)          # refills from the store
        assert cache.misses == misses, "store refill must not recompute"
        assert cache.store_hits == 1
        assert np.array_equal(u0, u1) and np.array_equal(s0, s1) and np.array_equal(vt0, vt1)

    def test_store_is_shared_across_cache_instances(self, tmp_path, rng):
        store = ExperimentStore(tmp_path / "store")
        matrix = rng.standard_normal((10, 7))
        writer = DecompositionCache()
        writer.attach_store(store)
        expected = writer.svd(matrix)

        reader = DecompositionCache()
        reader.attach_store(store)
        loaded = reader.svd(matrix)
        assert reader.misses == 0 and reader.store_hits == 1
        for left, right in zip(expected, loaded):
            assert np.array_equal(left, right)

    def test_corrupt_spill_falls_back_to_recompute(self, tmp_path, rng):
        store = ExperimentStore(tmp_path / "store")
        cache = DecompositionCache(maxsize=1)
        cache.attach_store(store)
        first, second = matrices(2, rng)
        cache.svd(first)
        for path in (tmp_path / "store").rglob("*.npz"):
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        cache.svd(second)                       # evict first
        u, s, vt = cache.svd(first)             # corrupt spill -> recompute
        reference = np.linalg.svd(active_backend().asarray(first), full_matrices=False)
        assert np.array_equal(u, reference[0])

    def test_detach_store_stops_spilling(self, tmp_path, rng):
        store = ExperimentStore(tmp_path / "store")
        cache = DecompositionCache()
        cache.attach_store(store)
        cache.detach_store()
        cache.svd(rng.standard_normal((4, 4)))
        assert store.puts == 0


class TestCacheIntrospection:
    """Counters + attachment state the parallel worker summaries report."""

    def test_counters_mirror_the_attributes(self, tmp_path, rng):
        store = ExperimentStore(tmp_path / "store")
        cache = DecompositionCache(maxsize=1)
        cache.attach_store(store)
        first, second = matrices(2, rng)
        cache.svd(first)
        cache.svd(first)
        cache.svd(second)   # evicts first
        cache.svd(first)    # refills from the store
        assert cache.counters() == {
            "hits": 1,
            "misses": 2,
            "evictions": 2,
            "store_hits": 1,
        }

    def test_store_attached_property(self, tmp_path):
        cache = DecompositionCache()
        assert not cache.store_attached
        cache.attach_store(ExperimentStore(tmp_path / "store"))
        assert cache.store_attached
        cache.detach_store()
        assert not cache.store_attached

    def test_execution_context_attach_store_spills_its_cache(self, tmp_path, rng):
        from repro.engine.context import ExecutionContext
        from repro.mapping.geometry import ArrayDims

        store = ExperimentStore(tmp_path / "store")
        context = ExecutionContext(
            array=ArrayDims.square(32), decompositions=DecompositionCache()
        )
        assert context.attach_store(store) is context
        context.lowrank_plan(rng.standard_normal((12, 9)), rank=3)
        assert store.puts > 0, "the context's private cache must spill through the store"
        puts = store.puts
        assert context.detach_store() is context
        context.lowrank_plan(rng.standard_normal((8, 8)), rank=2)
        assert store.puts == puts
