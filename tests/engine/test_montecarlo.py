"""Equivalence tests: batched Monte-Carlo kernel vs. the sequential per-trial oracles.

The extended contract (see ENGINE.md): trial ``t`` of a
:class:`MonteCarloTiledMatrix` draws its noise from generators seeded
``seed + t · trial_stride + allocation_index`` — exactly the streams of a
sequential per-trial run that builds a fresh :class:`BatchedTiledMatrix` (or
legacy :class:`TiledMatrix`) with seed ``seed + t · trial_stride``.  Programmed
conductances are therefore bit-for-bit identical per trial; analog outputs
agree up to floating-point associativity like the rest of the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.context import ExecutionContext
from repro.engine.kernels import (
    TRIAL_SEED_STRIDE,
    BatchedTiledMatrix,
    MonteCarloTiledMatrix,
)
from repro.imc.noise import NoiseModel
from repro.imc.simulator import IMCSimulator
from repro.imc.tiles import TiledMatrix
from repro.mapping.geometry import ArrayDims

from .precision_helpers import assert_outputs_match, assert_quantized_outputs_match

NOISE_MODELS = {
    "typical": NoiseModel.typical(),
    "harsh": NoiseModel(conductance_sigma=0.3, stuck_at_rate=0.01, ir_drop_severity=0.1),
    "faults_only": NoiseModel(stuck_at_rate=0.02),
    "ir_drop_only": NoiseModel(ir_drop_severity=0.08),
}


class TestTrialBitIdentity:
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    def test_each_trial_matches_sequential_batched_run(self, rng, small_array, noise_name):
        matrix = rng.standard_normal((40, 70))
        noise = NOISE_MODELS[noise_name]
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=3, noise=noise, seed=11)
        for trial in range(3):
            sequential = BatchedTiledMatrix(
                matrix, small_array, noise=noise, seed=mc.trial_seed(trial)
            )
            np.testing.assert_array_equal(mc.stored_matrix(trial), sequential.stored_matrix())

    def test_each_trial_matches_legacy_per_tile_oracle(self, rng, small_array):
        matrix = rng.standard_normal((40, 70))
        noise = NoiseModel.typical()
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=3, noise=noise, seed=4)
        for trial in range(3):
            legacy = TiledMatrix(matrix, small_array, noise=noise, seed=mc.trial_seed(trial))
            np.testing.assert_array_equal(mc.stored_matrix(trial), legacy.stored_matrix())

    def test_trials_draw_independent_noise(self, rng, small_array):
        matrix = rng.standard_normal((20, 40))
        mc = MonteCarloTiledMatrix(
            matrix, small_array, trials=2, noise=NoiseModel.typical(), seed=0
        )
        assert not np.array_equal(mc.stored_matrix(0), mc.stored_matrix(1))

    def test_ideal_noise_trials_are_identical(self, rng, small_array):
        matrix = rng.standard_normal((20, 40))
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=3, seed=0)
        stored = mc.stored_matrices()
        assert stored.shape == (3,) + matrix.shape
        np.testing.assert_array_equal(stored[0], stored[1])
        np.testing.assert_array_equal(stored[1], stored[2])

    def test_custom_trial_stride(self, rng, small_array):
        matrix = rng.standard_normal((20, 40))
        noise = NoiseModel.typical()
        mc = MonteCarloTiledMatrix(
            matrix, small_array, trials=2, noise=noise, seed=7, trial_stride=1000
        )
        assert mc.trial_seed(1) == 1007
        sequential = BatchedTiledMatrix(matrix, small_array, noise=noise, seed=1007)
        np.testing.assert_array_equal(mc.stored_matrix(1), sequential.stored_matrix())


class TestTrialOutputs:
    @pytest.mark.parametrize("noise_name", sorted(NOISE_MODELS))
    def test_outputs_match_sequential_runs(self, rng, small_array, noise_name):
        matrix = rng.standard_normal((40, 70))
        noise = NOISE_MODELS[noise_name]
        inputs = rng.standard_normal((5, 70))
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=3, noise=noise, seed=2)
        outputs = mc.mvm_batch(inputs)
        assert outputs.shape == (3, 5, 40)
        for trial in range(3):
            sequential = BatchedTiledMatrix(
                matrix, small_array, noise=noise, seed=mc.trial_seed(trial)
            )
            assert_outputs_match(outputs[trial], sequential.mvm_batch(inputs))

    def test_quantized_paths_match_sequential(self, rng, small_array):
        """DAC/ADC quantization arithmetic is identical per (trial, tile, vector)."""
        matrix = rng.standard_normal((40, 70))
        noise = NoiseModel.typical()
        inputs = rng.standard_normal((4, 70))
        mc = MonteCarloTiledMatrix(
            matrix, small_array, trials=2, noise=noise, seed=3, input_bits=6, output_bits=6
        )
        outputs = mc.mvm_batch(inputs)
        for trial in range(2):
            sequential = BatchedTiledMatrix(
                matrix,
                small_array,
                noise=noise,
                seed=mc.trial_seed(trial),
                input_bits=6,
                output_bits=6,
            )
            out_seq = sequential.mvm_batch(inputs)
            assert_quantized_outputs_match(outputs[trial], out_seq, output_bits=6)

    def test_per_trial_input_stacks(self, rng, small_array):
        """A (trials, batch, in) stack routes each trial its own inputs."""
        matrix = rng.standard_normal((20, 40))
        noise = NoiseModel.typical()
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=3, noise=noise, seed=1)
        stacked = rng.standard_normal((3, 4, 40))
        outputs = mc.mvm_batch(stacked)
        for trial in range(3):
            sequential = BatchedTiledMatrix(
                matrix, small_array, noise=noise, seed=mc.trial_seed(trial)
            )
            assert_outputs_match(outputs[trial], sequential.mvm_batch(stacked[trial]))

    def test_accounting_matches_sequential_totals(self, rng, small_array):
        matrix = rng.standard_normal((40, 70))
        noise = NoiseModel.typical()
        inputs = rng.standard_normal((4, 70))
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=3, noise=noise, seed=5)
        mc.mvm_batch(inputs)
        sequential = BatchedTiledMatrix(matrix, small_array, noise=noise, seed=5)
        sequential.mvm_batch(inputs)
        assert mc.num_allocated_tiles == sequential.num_allocated_tiles
        assert mc.grid_shape == sequential.grid_shape
        assert mc.logical_shape == sequential.logical_shape
        assert mc.activation_energy_pj() == sequential.activation_energy_pj()
        assert mc.total_activations == 3 * sequential.total_activations

    def test_validation(self, rng, small_array):
        matrix = rng.standard_normal((20, 40))
        with pytest.raises(ValueError):
            MonteCarloTiledMatrix(matrix, small_array, trials=0)
        with pytest.raises(ValueError):
            MonteCarloTiledMatrix(matrix, small_array, trials=2, trial_stride=0)
        with pytest.raises(ValueError):
            MonteCarloTiledMatrix(rng.standard_normal(10), small_array, trials=1)
        mc = MonteCarloTiledMatrix(matrix, small_array, trials=2)
        with pytest.raises(ValueError):
            mc.mvm_batch(np.ones((3, 4, 40)))  # wrong leading trial axis
        with pytest.raises(ValueError):
            mc.mvm_batch(np.ones((4, 39)))
        with pytest.raises(ValueError):
            mc.mvm_batch(np.ones(40))
        with pytest.raises(IndexError):
            mc.stored_matrix(2)
        with pytest.raises(IndexError):
            mc.trial_seed(-1)


class TestMonteCarloPlans:
    def test_two_stage_plan_matches_sequential_contexts(self, rng):
        """Low-rank MC plans chain per-trial intermediates like a sequential run."""
        weight = rng.standard_normal((32, 64))
        ctx = ExecutionContext(
            array=ArrayDims.square(32), noise=NoiseModel.typical(), seed=9
        )
        inputs = rng.standard_normal((6, 64))
        plan = ctx.lowrank_monte_carlo_plan(weight, rank=8, trials=3, groups=2)
        result = plan.run(inputs)
        assert result.outputs.shape == (3, 6, 32)
        for trial in range(3):
            sequential_plan = ctx.trial_context(trial).lowrank_plan(weight, rank=8, groups=2)
            sequential = sequential_plan.run(inputs)
            for stage_mc, stage_seq in zip(plan.stages, sequential_plan.stages):
                np.testing.assert_array_equal(
                    stage_mc.stored_matrix(trial), stage_seq.stored_matrix()
                )
            assert_outputs_match(result.outputs[trial], sequential.outputs)
            np.testing.assert_array_equal(result.exact, sequential.exact)
            assert result.energy_pj == sequential.energy_pj
            assert result.allocated_tiles == sequential.allocated_tiles

    def test_stage_noise_streams_are_decorrelated(self, rng):
        """Stage 2's tiles must not reuse stage 1's per-tile RNG streams.

        Per-tile generators are seeded ``seed + allocation_index``, so two
        kernels whose base seeds differ by less than the first one's tile
        count share streams — demonstrated below on the same matrix, where
        seed 0's tile 1 and seed 1's tile 0 program bit-identical noise.
        Multi-stage plans therefore space their stages by
        ``STAGE_SEED_STRIDE``, which must exceed any realistic tile count.
        """
        from repro.engine.kernels import STAGE_SEED_STRIDE

        noise = NoiseModel(conductance_sigma=0.2)
        block = rng.standard_normal((32, 32))
        matrix = np.hstack([block, block])  # two full 32x32 tiles, same content
        array = ArrayDims.square(32)
        a = MonteCarloTiledMatrix(matrix, array, trials=1, noise=noise, seed=0)
        b = MonteCarloTiledMatrix(matrix, array, trials=1, noise=noise, seed=1)
        # The aliasing mechanism: b's tile 0 draws a's tile 1 stream.
        np.testing.assert_array_equal(a._diff[0, 1], b._diff[0, 0])
        # The plan stages are spaced far beyond their tile counts.
        ctx = ExecutionContext(array=array, noise=noise, seed=0)
        plan = ctx.lowrank_monte_carlo_plan(
            rng.standard_normal((64, 64)), rank=32, trials=2, groups=1
        )
        stage1, stage2 = plan.stages
        assert stage2.seed - stage1.seed == STAGE_SEED_STRIDE
        assert STAGE_SEED_STRIDE > stage1.num_allocated_tiles
        sequential = ctx.lowrank_plan(rng.standard_normal((64, 64)), rank=32, groups=1)
        assert sequential.stages[1].seed - sequential.stages[0].seed == STAGE_SEED_STRIDE

    def test_dense_plan_statistics(self, rng):
        weight = rng.standard_normal((24, 48))
        ctx = ExecutionContext(array=ArrayDims.square(32), noise=NoiseModel.typical(), seed=1)
        result = ctx.dense_monte_carlo_plan(weight, trials=5).run(rng.standard_normal((8, 48)))
        errors = result.relative_errors
        assert errors.shape == (5,)
        assert result.mean_relative_error == pytest.approx(float(np.mean(errors)))
        assert result.std_relative_error == pytest.approx(float(np.std(errors)))
        assert result.worst_relative_error == pytest.approx(float(np.max(errors)))
        assert np.all(errors > 0)

    def test_simulator_facades(self, rng):
        """IMCSimulator trial façades mirror the sequential run_* methods."""
        weight = rng.standard_normal((24, 48))
        inputs = rng.standard_normal((4, 48))
        simulator = IMCSimulator(
            array=ArrayDims.square(32), noise=NoiseModel.typical(), seed=6
        )
        mc = simulator.run_dense_trials(weight, inputs, trials=2)
        for trial in range(2):
            sequential = IMCSimulator(
                array=ArrayDims.square(32),
                noise=NoiseModel.typical(),
                seed=6 + trial * TRIAL_SEED_STRIDE,
            ).run_dense(weight, inputs)
            assert_outputs_match(mc.outputs[trial], sequential.outputs)
        lowrank = simulator.run_lowrank_trials(weight, inputs, trials=2, rank=6, groups=2)
        assert lowrank.outputs.shape == (2, 4, 24)
        assert lowrank.trials == 2
