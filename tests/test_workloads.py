"""Tests for the network layer-geometry catalogues."""

from __future__ import annotations

import pytest

from repro.mapping.geometry import (
    AttentionProjectionGeometry,
    GroupedConvGeometry,
    layer_family,
)
from repro.workloads import (
    NETWORKS,
    compressible_geometries,
    mobilenet_cifar_geometries,
    network_entry,
    network_families,
    network_geometries,
    register_network,
    registered_networks,
    resnet20_geometries,
    resnext20_geometries,
    tiny_transformer_geometries,
    wrn16_4_geometries,
)


class TestResNet20Catalogue:
    def test_layer_count(self):
        geometries = resnet20_geometries()
        # 1 stem + 18 block convs + 2 projection shortcuts
        assert len(geometries) == 21

    def test_total_parameter_count_matches_architecture(self):
        total = sum(g.weight_count for g in resnet20_geometries())
        # Conv parameters of ResNet-20 (excluding BN/FC) ≈ 0.268M
        assert 0.25e6 < total < 0.29e6

    def test_spatial_sizes_halve_per_stage(self):
        geometries = {g.name: g for g in resnet20_geometries()}
        assert geometries["layer1.0.conv1"].input_h == 32
        assert geometries["layer2.1.conv1"].input_h == 16
        assert geometries["layer3.1.conv1"].input_h == 8

    def test_channel_progression(self):
        geometries = {g.name: g for g in resnet20_geometries()}
        assert geometries["layer1.0.conv1"].out_channels == 16
        assert geometries["layer2.0.conv1"].out_channels == 32
        assert geometries["layer3.0.conv1"].out_channels == 64

    def test_strides(self):
        geometries = {g.name: g for g in resnet20_geometries()}
        assert geometries["layer2.0.conv1"].stride == 2
        assert geometries["layer2.0.conv2"].stride == 1
        assert geometries["layer2.0.shortcut"].stride == 2


class TestWRNCatalogue:
    def test_layer_count(self):
        geometries = wrn16_4_geometries()
        # 1 stem + 12 block convs + 3 projection shortcuts (every stage widens)
        assert len(geometries) == 16

    def test_total_parameter_count(self):
        total = sum(g.weight_count for g in wrn16_4_geometries())
        # Conv parameters of WRN16-4 ≈ 2.75M
        assert 2.5e6 < total < 3.0e6

    def test_widths(self):
        geometries = {g.name: g for g in wrn16_4_geometries()}
        assert geometries["layer1.0.conv1"].out_channels == 64
        assert geometries["layer2.0.conv1"].out_channels == 128
        assert geometries["layer3.0.conv1"].out_channels == 256


class TestHelpers:
    def test_network_geometries_dispatch(self):
        assert network_geometries("resnet20") == resnet20_geometries()
        assert network_geometries("wrn16_4") == wrn16_4_geometries()
        with pytest.raises(ValueError):
            network_geometries("alexnet")

    @pytest.mark.parametrize("network", NETWORKS)
    def test_compressible_excludes_stem_pointwise(self, network):
        compressible = compressible_geometries(network)
        assert all(g.name != "conv1" for g in compressible)
        assert all(not g.is_pointwise for g in compressible)
        assert compressible  # non-empty

    def test_compressible_counts(self):
        assert len(compressible_geometries("resnet20")) == 18
        assert len(compressible_geometries("wrn16_4")) == 12

    def test_all_names_unique(self):
        for network in registered_networks():
            names = [g.name for g in network_geometries(network)]
            assert len(names) == len(set(names))


class TestRegistry:
    def test_paper_networks_unchanged(self):
        assert NETWORKS == ("resnet20", "wrn16_4")

    def test_zoo_presets_registered(self):
        registered = registered_networks()
        for name in ("resnet20", "wrn16_4", "resnext20", "mobilenet_cifar", "tiny_transformer"):
            assert name in registered

    def test_unknown_network_error_lists_registered(self):
        with pytest.raises(ValueError, match="resnet20.*tiny_transformer"):
            network_geometries("alexnet")

    def test_entry_carries_description(self):
        for name in registered_networks():
            assert network_entry(name).description

    def test_register_network_roundtrip(self):
        entry = register_network("_test_net", lambda size: resnet20_geometries(size))
        try:
            assert network_geometries("_test_net") == resnet20_geometries()
            assert entry.families() == ("conv",)
        finally:
            from repro.workloads.registry import _REGISTRY

            _REGISTRY.pop("_test_net", None)

    def test_network_families(self):
        assert network_families("resnet20") == ("conv",)
        assert network_families("resnext20") == ("conv", "grouped")
        assert network_families("mobilenet_cifar") == ("conv", "depthwise")
        assert network_families("tiny_transformer") == ("attention",)


class TestModernPresets:
    def test_resnext_grouped_layers(self):
        geometries = resnext20_geometries()
        assert len(geometries) == 19  # stem + 3 stages x 2 blocks x 3 convs
        grouped = [g for g in geometries if isinstance(g, GroupedConvGeometry)]
        assert len(grouped) == 6
        assert all(g.groups == 8 for g in grouped)
        assert all(layer_family(g) == "grouped" for g in grouped)

    def test_resnext_spatial_and_width_progression(self):
        geometries = {g.name: g for g in resnext20_geometries()}
        assert geometries["layer1.0.gconv"].out_channels == 64
        assert geometries["layer2.0.gconv"].out_channels == 128
        assert geometries["layer3.0.gconv"].out_channels == 256
        assert geometries["layer2.0.gconv"].stride == 2
        assert geometries["layer2.1.gconv"].input_h == 16
        assert geometries["layer3.1.gconv"].input_h == 8

    def test_mobilenet_depthwise_layers(self):
        geometries = mobilenet_cifar_geometries()
        depthwise = [g for g in geometries if isinstance(g, GroupedConvGeometry)]
        assert len(depthwise) == 5
        for g in depthwise:
            assert g.is_depthwise
            assert g.groups == g.in_channels == g.out_channels
            assert layer_family(g) == "depthwise"
        pointwise = [g for g in geometries if g.is_pointwise]
        assert len(pointwise) == 5

    def test_transformer_is_all_attention_gemms(self):
        geometries = tiny_transformer_geometries(input_size=32)
        assert len(geometries) == 8  # 2 blocks x (qkv, out, mlp.up, mlp.down)
        for g in geometries:
            assert isinstance(g, AttentionProjectionGeometry)
            assert g.seq_len == 32
            assert g.num_windows == 32
        qkv = next(g for g in geometries if g.name == "block0.attn.qkv")
        assert qkv.projections == 3
        assert (qkv.m, qkv.n) == (192, 64)
        up = next(g for g in geometries if g.name == "block0.mlp.up")
        assert (up.m, up.n) == (256, 64)

    def test_transformer_input_size_is_sequence_length(self):
        for seq_len in (8, 32):
            for g in tiny_transformer_geometries(input_size=seq_len):
                assert g.seq_len == seq_len

    def test_grouped_weight_counts_exclude_structural_zeros(self):
        for g in resnext20_geometries() + mobilenet_cifar_geometries():
            if isinstance(g, GroupedConvGeometry):
                assert g.weight_count * g.groups == g.dense_weight_count
