"""Tests for the network layer-geometry catalogues."""

from __future__ import annotations

import pytest

from repro.workloads import (
    NETWORKS,
    compressible_geometries,
    network_geometries,
    resnet20_geometries,
    wrn16_4_geometries,
)


class TestResNet20Catalogue:
    def test_layer_count(self):
        geometries = resnet20_geometries()
        # 1 stem + 18 block convs + 2 projection shortcuts
        assert len(geometries) == 21

    def test_total_parameter_count_matches_architecture(self):
        total = sum(g.weight_count for g in resnet20_geometries())
        # Conv parameters of ResNet-20 (excluding BN/FC) ≈ 0.268M
        assert 0.25e6 < total < 0.29e6

    def test_spatial_sizes_halve_per_stage(self):
        geometries = {g.name: g for g in resnet20_geometries()}
        assert geometries["layer1.0.conv1"].input_h == 32
        assert geometries["layer2.1.conv1"].input_h == 16
        assert geometries["layer3.1.conv1"].input_h == 8

    def test_channel_progression(self):
        geometries = {g.name: g for g in resnet20_geometries()}
        assert geometries["layer1.0.conv1"].out_channels == 16
        assert geometries["layer2.0.conv1"].out_channels == 32
        assert geometries["layer3.0.conv1"].out_channels == 64

    def test_strides(self):
        geometries = {g.name: g for g in resnet20_geometries()}
        assert geometries["layer2.0.conv1"].stride == 2
        assert geometries["layer2.0.conv2"].stride == 1
        assert geometries["layer2.0.shortcut"].stride == 2


class TestWRNCatalogue:
    def test_layer_count(self):
        geometries = wrn16_4_geometries()
        # 1 stem + 12 block convs + 3 projection shortcuts (every stage widens)
        assert len(geometries) == 16

    def test_total_parameter_count(self):
        total = sum(g.weight_count for g in wrn16_4_geometries())
        # Conv parameters of WRN16-4 ≈ 2.75M
        assert 2.5e6 < total < 3.0e6

    def test_widths(self):
        geometries = {g.name: g for g in wrn16_4_geometries()}
        assert geometries["layer1.0.conv1"].out_channels == 64
        assert geometries["layer2.0.conv1"].out_channels == 128
        assert geometries["layer3.0.conv1"].out_channels == 256


class TestHelpers:
    def test_network_geometries_dispatch(self):
        assert network_geometries("resnet20") == resnet20_geometries()
        assert network_geometries("wrn16_4") == wrn16_4_geometries()
        with pytest.raises(ValueError):
            network_geometries("alexnet")

    @pytest.mark.parametrize("network", NETWORKS)
    def test_compressible_excludes_stem_pointwise(self, network):
        compressible = compressible_geometries(network)
        assert all(g.name != "conv1" for g in compressible)
        assert all(not g.is_pointwise for g in compressible)
        assert compressible  # non-empty

    def test_compressible_counts(self):
        assert len(compressible_geometries("resnet20")) == 18
        assert len(compressible_geometries("wrn16_4")) == 12

    def test_all_names_unique(self):
        for network in NETWORKS:
            names = [g.name for g in network_geometries(network)]
            assert len(names) == len(set(names))
