"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import importlib.abc
import sys

import numpy as np
import pytest

from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.nn.tensor import Tensor


class _NumbaBlocker(importlib.abc.MetaPathFinder):
    """A meta-path finder that makes every numba import fail."""

    def find_spec(self, fullname, path=None, target=None):
        if fullname == "numba" or fullname.startswith("numba."):
            raise ModuleNotFoundError(f"import of {fullname!r} blocked by test fixture")
        return None


@pytest.fixture
def without_numba(monkeypatch):
    """Simulate a host without numba, regardless of what is installed.

    Blocks numba imports (and ``find_spec`` probes) via a meta-path hook,
    scrubs any already-imported numba modules, disables the pure-Python
    kernel seam, and drops the memoized compiled-backend instance — so the
    registry's availability probe reports the backend unavailable exactly as
    it would on a machine without the ``repro[compiled]`` extra.
    """
    from repro.backend.core import _INSTANCES

    monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
    for name in [m for m in sys.modules if m == "numba" or m.startswith("numba.")]:
        monkeypatch.delitem(sys.modules, name, raising=False)
    monkeypatch.setattr(sys, "meta_path", [_NumbaBlocker()] + sys.meta_path)
    monkeypatch.delitem(_INSTANCES, "compiled", raising=False)
    yield
    # The instance memoized while blocked (none today: unavailable backends
    # never construct) must not leak into tests that expect a working JIT.
    _INSTANCES.pop("compiled", None)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for each test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_geometry() -> ConvGeometry:
    """A small 3×3 convolution geometry used across mapping/lowrank tests."""
    return ConvGeometry(
        in_channels=4,
        out_channels=8,
        kernel_h=3,
        kernel_w=3,
        input_h=8,
        input_w=8,
        stride=1,
        padding=1,
        name="test-conv",
    )


@pytest.fixture
def small_array() -> ArrayDims:
    """A 32×32 crossbar (4-bit weights in 4-bit cells: one column per weight)."""
    return ArrayDims.square(32)


def numerical_gradient(func, values: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of a numpy array."""
    grad = np.zeros_like(values, dtype=np.float64)
    flat = values.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func(values)
        flat[index] = original - epsilon
        minus = func(values)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


def check_gradient(build_output, values: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Compare autograd gradients against numerical differentiation.

    ``build_output`` maps a :class:`Tensor` (requiring grad) to a scalar Tensor.
    """
    tensor = Tensor(values.copy(), requires_grad=True)
    output = build_output(tensor)
    output.backward()
    analytic = tensor.grad

    def scalar(vals: np.ndarray) -> float:
        return float(build_output(Tensor(vals.copy())).data)

    numeric = numerical_gradient(scalar, values.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
