"""Tests for the uniform and DoReFa quantizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization.quantizers import (
    DoReFaActivationQuantizer,
    DoReFaWeightQuantizer,
    UniformQuantizer,
    dequantize_uniform,
    quantization_error,
    quantization_levels,
    quantize_uniform,
)


class TestPrimitives:
    def test_levels(self):
        assert quantization_levels(1) == 2
        assert quantization_levels(4) == 16
        with pytest.raises(ValueError):
            quantization_levels(0)

    def test_quantize_dequantize_roundtrip_on_grid(self):
        values = np.linspace(-1, 1, 17)[:-1]
        codes, scale = quantize_uniform(values, 4, -1.0, 1.0)
        recovered = dequantize_uniform(codes, scale, -1.0)
        np.testing.assert_allclose(recovered, values, atol=scale / 2 + 1e-12)

    def test_quantize_clips_out_of_range(self):
        codes, scale = quantize_uniform(np.array([5.0, -5.0]), 2, -1.0, 1.0)
        assert codes.max() <= 3 and codes.min() >= 0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.zeros(3), 4, 1.0, 1.0)

    def test_quantization_error_zero_for_identical(self, rng):
        values = rng.standard_normal(10)
        assert quantization_error(values, values.copy()) == 0.0

    def test_quantization_error_zero_matrix(self):
        assert quantization_error(np.zeros(5), np.zeros(5)) == 0.0


class TestUniformQuantizer:
    def test_output_levels_bounded(self, rng):
        quantizer = UniformQuantizer(bits=3)
        values = rng.standard_normal(1000)
        quantized = quantizer(values)
        assert len(np.unique(quantized)) <= 8

    def test_preserves_extremes(self, rng):
        quantizer = UniformQuantizer(bits=4)
        values = rng.standard_normal(100)
        quantized = quantizer(values)
        assert quantized.max() <= np.abs(values).max() + 1e-12
        assert np.abs(quantized).max() == pytest.approx(np.abs(values).max())

    def test_error_decreases_with_bits(self, rng):
        values = rng.standard_normal(500)
        errors = [quantization_error(values, UniformQuantizer(bits=b)(values)) for b in (2, 4, 8)]
        assert errors[0] > errors[1] > errors[2]

    def test_zero_input(self):
        quantizer = UniformQuantizer(bits=4)
        np.testing.assert_allclose(quantizer(np.zeros(5)), np.zeros(5))

    def test_asymmetric_mode(self, rng):
        quantizer = UniformQuantizer(bits=4, symmetric=False)
        values = rng.random(100) + 3.0
        quantized = quantizer(values)
        assert quantized.min() >= values.min() - 1e-9
        assert quantized.max() <= values.max() + 1e-9

    def test_empty_input(self):
        quantizer = UniformQuantizer(bits=4)
        assert quantizer(np.array([])).size == 0

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(2, 40), elements=st.floats(-10, 10)),
        st.integers(min_value=2, max_value=8),
    )
    def test_idempotent(self, values, bits):
        """Quantizing an already-quantized tensor must not change it."""
        quantizer = UniformQuantizer(bits=bits)
        once = quantizer(values)
        twice = quantizer(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestDoReFaWeightQuantizer:
    def test_output_in_unit_range(self, rng):
        quantizer = DoReFaWeightQuantizer(bits=4)
        quantized = quantizer(rng.standard_normal(500) * 3)
        assert np.all(quantized <= 1.0 + 1e-12) and np.all(quantized >= -1.0 - 1e-12)

    def test_level_count(self, rng):
        quantizer = DoReFaWeightQuantizer(bits=2)
        quantized = quantizer(rng.standard_normal(2000))
        assert len(np.unique(quantized)) <= 4

    def test_one_bit_is_sign_times_mean(self, rng):
        values = rng.standard_normal(100)
        quantized = DoReFaWeightQuantizer(bits=1)(values)
        scale = np.mean(np.abs(values))
        np.testing.assert_allclose(np.abs(quantized), np.full_like(values, scale))
        np.testing.assert_allclose(np.sign(quantized[values != 0]), np.sign(values[values != 0]))

    def test_monotone_in_input(self, rng):
        quantizer = DoReFaWeightQuantizer(bits=4)
        values = np.sort(rng.standard_normal(50))
        quantized = quantizer(values)
        assert np.all(np.diff(quantized) >= -1e-12)

    def test_zero_input(self):
        assert np.all(DoReFaWeightQuantizer(bits=4)(np.zeros(5)) == 0)
        assert np.all(DoReFaWeightQuantizer(bits=1)(np.zeros(5)) == 0)

    def test_error_against_continuous_transform_decreases_with_bits(self, rng):
        """More bits approximate the continuous DoReFa transform better.

        (DoReFa rescales weights to [-1, 1], so comparing against the *original*
        float weights is not meaningful; the convergence target is the
        un-quantized tanh-normalized transform, approximated here with 16 bits.)
        """
        values = rng.standard_normal(500)
        continuous = DoReFaWeightQuantizer(bits=16)(values)
        errors = [
            quantization_error(continuous, DoReFaWeightQuantizer(bits=b)(values)) for b in (2, 4, 8)
        ]
        assert all(errors[i] >= errors[i + 1] - 1e-9 for i in range(len(errors) - 1))


class TestDoReFaActivationQuantizer:
    def test_clips_to_unit_interval(self, rng):
        quantizer = DoReFaActivationQuantizer(bits=4)
        quantized = quantizer(rng.standard_normal(500) * 3)
        assert quantized.min() >= 0.0 and quantized.max() <= 1.0

    def test_level_count(self, rng):
        quantized = DoReFaActivationQuantizer(bits=2)(rng.random(1000))
        assert len(np.unique(quantized)) <= 4

    def test_custom_clip_max(self, rng):
        quantizer = DoReFaActivationQuantizer(bits=4, clip_max=6.0)
        quantized = quantizer(rng.random(100) * 10)
        assert quantized.max() <= 6.0

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            DoReFaActivationQuantizer(bits=4, clip_max=0.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            DoReFaActivationQuantizer(bits=0)
