"""Tests for model-wide QAT configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank.compress import CompressionSpec, compress_model
from repro.nn.models import SimpleCNN
from repro.nn.tensor import Tensor
from repro.quantization.config import QuantizationConfig, apply_qat, quantized_layers
from repro.quantization.qat import QATConv2d, QATGroupLowRankConv2d, QATLinear


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = QuantizationConfig()
        assert config.weight_bits == 4 and config.activation_bits == 4
        assert config.scheme == "dorefa"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            QuantizationConfig(weight_bits=0)
        with pytest.raises(ValueError):
            QuantizationConfig(activation_bits=0)
        with pytest.raises(ValueError):
            QuantizationConfig(scheme="float")

    def test_label(self):
        assert QuantizationConfig(weight_bits=2, activation_bits=3).label == "W2A3 (dorefa)"


class TestApplyQAT:
    def test_wraps_all_but_first_conv_and_last_linear(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_qat(model, QuantizationConfig())
        assert report.quantized
        # The stem conv remains a bare Conv2d reachable directly (not via a QAT wrapper path).
        wrappers = quantized_layers(model)
        assert all(not name.endswith("features.0") for name in wrappers)
        assert len(report.skipped) >= 1

    def test_model_runs_after_qat(self, rng):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        apply_qat(model, QuantizationConfig(weight_bits=4, activation_bits=4))
        out = model(Tensor(rng.standard_normal((2, 3, 12, 12))))
        assert out.shape == (2, 5)

    def test_quantization_changes_outputs(self, rng):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        model.eval()
        x = Tensor(rng.standard_normal((2, 3, 12, 12)))
        reference = model(x).data
        apply_qat(model, QuantizationConfig(weight_bits=1, activation_bits=1))
        model.eval()
        assert not np.allclose(model(x).data, reference)

    def test_qat_on_compressed_model(self, rng):
        """QAT wraps the group low-rank layers of a compressed model (the paper's pipeline)."""
        model = SimpleCNN(num_classes=5, widths=(8, 8, 16), seed=0)
        compress_model(model, CompressionSpec(rank_divisor=4, groups=2))
        apply_qat(model, QuantizationConfig())
        wrappers = quantized_layers(model)
        assert any(isinstance(w, QATGroupLowRankConv2d) for w in wrappers.values())
        out = model(Tensor(rng.standard_normal((1, 3, 12, 12))))
        assert out.shape == (1, 5)

    def test_report_describe(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_qat(model)
        assert "quantized" in report.describe()

    def test_quantized_layers_lookup(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        apply_qat(model)
        wrappers = quantized_layers(model)
        assert all(isinstance(w, (QATConv2d, QATLinear, QATGroupLowRankConv2d)) for w in wrappers.values())
        assert len(wrappers) >= 2
