"""Tests for the QAT layer wrappers (fake quantization + straight-through gradients)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowrank.layers import GroupLowRankConv2d
from repro.nn.modules import Conv2d, Linear
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.quantization.qat import (
    QATConv2d,
    QATGroupLowRankConv2d,
    QATLinear,
    fake_quantize,
    make_activation_quantizer,
    make_weight_quantizer,
)
from repro.quantization.quantizers import DoReFaWeightQuantizer, UniformQuantizer


class TestFactories:
    def test_weight_quantizer_schemes(self):
        assert isinstance(make_weight_quantizer(4, "dorefa"), DoReFaWeightQuantizer)
        assert isinstance(make_weight_quantizer(4, "uniform"), UniformQuantizer)
        with pytest.raises(ValueError):
            make_weight_quantizer(4, "unknown")

    def test_activation_quantizer_schemes(self):
        make_activation_quantizer(4, "dorefa")
        make_activation_quantizer(4, "uniform")
        with pytest.raises(ValueError):
            make_activation_quantizer(4, "nope")


class TestFakeQuantize:
    def test_forward_is_quantized(self, rng):
        tensor = Tensor(rng.standard_normal(100), requires_grad=True)
        out = fake_quantize(tensor, UniformQuantizer(bits=2))
        assert len(np.unique(out.data)) <= 4

    def test_gradient_passes_through(self, rng):
        tensor = Tensor(rng.standard_normal(10), requires_grad=True)
        fake_quantize(tensor, UniformQuantizer(bits=2)).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones(10))


class TestQATConv2d:
    def test_forward_shape_unchanged(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        qat = QATConv2d(conv, weight_bits=4, activation_bits=4)
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        assert qat(x).shape == conv(x).shape

    def test_output_differs_from_float_at_low_bits(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        qat = QATConv2d(conv, weight_bits=1, activation_bits=1)
        x = Tensor(rng.standard_normal((1, 3, 6, 6)))
        assert not np.allclose(qat(x).data, conv(x).data)

    def test_high_bits_uniform_close_to_float(self, rng):
        """The symmetric uniform quantizer at 8 bits barely perturbs the outputs.

        (The DoReFa weight quantizer intentionally re-scales weights to [-1, 1],
        so the closeness check only makes sense for the uniform scheme.)
        """
        conv = Conv2d(3, 4, 3, padding=1, bias=False, rng=rng)
        qat = QATConv2d(conv, weight_bits=8, activation_bits=None, scheme="uniform")
        x = Tensor(rng.standard_normal((1, 3, 6, 6)))
        relative = np.linalg.norm(qat(x).data - conv(x).data) / np.linalg.norm(conv(x).data)
        assert relative < 0.05

    def test_quantized_weight_levels(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        qat = QATConv2d(conv, weight_bits=2)
        assert len(np.unique(qat.quantized_weight())) <= 4

    def test_gradients_reach_underlying_weights(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        qat = QATConv2d(conv, weight_bits=4, activation_bits=4)
        qat(Tensor(rng.standard_normal((2, 3, 5, 5)))).sum().backward()
        assert conv.weight.grad is not None
        assert np.any(conv.weight.grad != 0)

    def test_trainable_with_ste(self, rng):
        """QAT layer trains: loss decreases despite the non-differentiable rounding."""
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        qat = QATConv2d(conv, weight_bits=4, activation_bits=4)
        x = Tensor(rng.standard_normal((4, 2, 6, 6)))
        target = rng.standard_normal((4, 3, 6, 6))
        optimizer = SGD(conv.parameters(), lr=0.05)
        losses = []
        for _ in range(25):
            optimizer.zero_grad()
            diff = qat(x) - Tensor(target)
            loss = (diff * diff).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_no_activation_quantization_when_none(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, bias=False, rng=rng)
        qat = QATConv2d(conv, weight_bits=4, activation_bits=None)
        assert qat.activation_quantizer is None


class TestQATLinear:
    def test_forward_shape(self, rng):
        linear = Linear(10, 6, rng=rng)
        qat = QATLinear(linear, weight_bits=4)
        assert qat(Tensor(rng.standard_normal((3, 10)))).shape == (3, 6)

    def test_quantized_weight(self, rng):
        qat = QATLinear(Linear(10, 6, rng=rng), weight_bits=2)
        assert len(np.unique(qat.quantized_weight())) <= 4

    def test_gradient_flow(self, rng):
        linear = Linear(8, 4, rng=rng)
        qat = QATLinear(linear, weight_bits=4)
        qat(Tensor(rng.standard_normal((2, 8)))).sum().backward()
        assert linear.weight.grad is not None


class TestQATGroupLowRankConv2d:
    def test_forward_shape(self, rng):
        layer = GroupLowRankConv2d(4, 6, 3, rank=2, groups=2, padding=1, rng=rng)
        qat = QATGroupLowRankConv2d(layer, weight_bits=4, activation_bits=4)
        x = Tensor(rng.standard_normal((2, 4, 6, 6)))
        assert qat(x).shape == layer(x).shape

    def test_matches_float_at_high_bits_uniform(self, rng):
        layer = GroupLowRankConv2d(4, 6, 3, rank=4, groups=2, padding=1, rng=rng)
        qat = QATGroupLowRankConv2d(layer, weight_bits=8, activation_bits=None, scheme="uniform")
        x = Tensor(rng.standard_normal((1, 4, 6, 6)))
        relative = np.linalg.norm(qat(x).data - layer(x).data) / np.linalg.norm(layer(x).data)
        assert relative < 0.05

    def test_gradients_reach_factors(self, rng):
        layer = GroupLowRankConv2d(4, 6, 3, rank=2, groups=2, padding=1, rng=rng)
        qat = QATGroupLowRankConv2d(layer, weight_bits=4, activation_bits=4)
        qat(Tensor(rng.standard_normal((1, 4, 5, 5)))).sum().backward()
        assert layer.left_weight.grad is not None
        assert layer.right_weight.grad is not None

    def test_repr_mentions_bits(self, rng):
        layer = GroupLowRankConv2d(4, 6, 3, rank=2, groups=2, rng=rng)
        qat = QATGroupLowRankConv2d(layer, weight_bits=4, activation_bits=4)
        assert "weight_bits=4" in qat.extra_repr()
