"""Operation-level tests of the execution backends.

The protocol surface (``matmul``, ``batched_matmul``, ``einsum``, ``svd``,
array alloc/cast) must agree with plain numpy at the policy's dtype, and the
threaded tile executor must be **bit-identical** to the ``numpy64``
reference on every batch shape the engine produces — including the
broadcast-trial 4-D Monte-Carlo case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    FLOAT32_POLICY,
    FLOAT64_POLICY,
    ThreadedBackend,
    get_backend,
)


@pytest.fixture(params=["numpy64", "numpy32", "threaded"])
def backend(request):
    return get_backend(request.param)


class TestProtocolSurface:
    def test_policies(self):
        assert get_backend("numpy64").policy == FLOAT64_POLICY
        assert get_backend("threaded").policy == FLOAT64_POLICY
        assert get_backend("numpy32").policy == FLOAT32_POLICY
        assert get_backend("numpy32").policy.salt_token == "float32"
        assert get_backend("threaded").policy.salt_token == ""

    def test_asarray_casts_to_policy_dtype(self, backend, rng):
        values = rng.standard_normal((4, 5))
        cast = backend.asarray(values)
        assert cast.dtype == np.dtype(backend.policy.dtype)
        if backend.policy.dtype == "float64":
            assert cast is values  # no-copy fast path

    def test_alloc(self, backend):
        zeros = backend.zeros((3, 4))
        empty = backend.empty((2, 2))
        assert zeros.shape == (3, 4) and not zeros.any()
        assert zeros.dtype == empty.dtype == np.dtype(backend.policy.dtype)

    def test_matmul(self, backend, rng):
        a, b = rng.standard_normal((5, 7)), rng.standard_normal((7, 3))
        result = backend.matmul(a, b)
        reference = np.matmul(backend.asarray(a), backend.asarray(b))
        np.testing.assert_array_equal(result, reference)
        assert result.dtype == np.dtype(backend.policy.dtype)

    def test_einsum(self, backend, rng):
        a, b = rng.standard_normal((4, 6)), rng.standard_normal((6, 2))
        result = backend.einsum("ij,jk->ik", a, b)
        reference = np.einsum("ij,jk->ik", backend.asarray(a), backend.asarray(b))
        np.testing.assert_array_equal(result, reference)

    def test_svd(self, backend, rng):
        matrix = rng.standard_normal((8, 12))
        u, s, vt = backend.svd(matrix)
        ref = np.linalg.svd(backend.asarray(matrix), full_matrices=False)
        np.testing.assert_array_equal(u, ref[0])
        np.testing.assert_array_equal(s, ref[1])
        np.testing.assert_array_equal(vt, ref[2])
        assert u.dtype == np.dtype(backend.policy.dtype)

    def test_batched_matmul_matches_numpy(self, backend, rng):
        a = rng.standard_normal((6, 4, 5))
        b = rng.standard_normal((6, 5, 3))
        result = backend.batched_matmul(a, b)
        reference = np.matmul(backend.asarray(a), backend.asarray(b))
        np.testing.assert_array_equal(result, reference)


class TestThreadedBitIdentity:
    """The chunked tile executor must reproduce numpy.matmul bit-for-bit."""

    @pytest.mark.parametrize(
        "a_shape,b_shape",
        [
            ((7, 9, 5), (7, 5, 4)),          # stacked tiles (BatchedTiledMatrix)
            ((1, 6, 8, 5), (3, 6, 5, 4)),    # shared-input Monte-Carlo broadcast
            ((3, 6, 8, 5), (3, 6, 5, 4)),    # per-trial input stacks
            ((2, 1, 4, 3), (2, 5, 3, 2)),    # inner broadcast axis
            ((1, 9, 5), (7, 5, 4)),          # leading broadcast only
            ((4, 5), (5, 3)),                # plain 2-D falls through
            ((1, 3, 2), (1, 2, 2)),          # single slice
        ],
    )
    def test_bit_identical_to_stacked_matmul(self, rng, a_shape, b_shape):
        threaded = get_backend("threaded")
        a, b = rng.standard_normal(a_shape), rng.standard_normal(b_shape)
        np.testing.assert_array_equal(threaded.batched_matmul(a, b), np.matmul(a, b))

    def test_zero_size_batch(self, rng):
        threaded = get_backend("threaded")
        a, b = rng.standard_normal((0, 3, 2)), rng.standard_normal((0, 2, 4))
        assert threaded.batched_matmul(a, b).shape == (0, 3, 4)

    def test_many_slices_fan_out(self, rng):
        """More slices than chunks: every chunk boundary still lands exactly."""
        threaded = ThreadedBackend(max_workers=3, chunks_per_worker=2)
        a, b = rng.standard_normal((41, 6, 5)), rng.standard_normal((41, 5, 4))
        np.testing.assert_array_equal(threaded.batched_matmul(a, b), np.matmul(a, b))

    def test_single_worker_inline_path(self, rng):
        threaded = ThreadedBackend(max_workers=1)
        a, b = rng.standard_normal((5, 3, 2)), rng.standard_normal((5, 2, 3))
        np.testing.assert_array_equal(threaded.batched_matmul(a, b), np.matmul(a, b))

    def test_worker_exception_propagates(self):
        threaded = ThreadedBackend(max_workers=2)
        bad = np.ones((4, 3, 2))
        with pytest.raises(ValueError):
            threaded.batched_matmul(bad, np.ones((4, 5, 2)))  # inner dims mismatch

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadedBackend(max_workers=0)

    def test_respects_threads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "3")
        assert ThreadedBackend().max_workers == 3


class TestFusedTileExecutor:
    """The fused tiled_mvm override vs. the reference base implementation.

    A many-worker ThreadedBackend forces real chunk scheduling (several
    column-group chunks in flight) on matrices with partial edge tiles, with
    and without ADC quantization, and across Monte-Carlo trial stacks — the
    outputs must be bit-for-bit those of the numpy64 reference path.
    """

    @pytest.fixture
    def many_workers(self):
        return ThreadedBackend(max_workers=4, chunks_per_worker=2)

    @pytest.mark.parametrize("bits", [None, 6])
    @pytest.mark.parametrize("shape", [(40, 70), (33, 65), (100, 1), (64, 64)])
    def test_batched_kernel_bit_identical(self, rng, many_workers, shape, bits):
        from repro.engine.kernels import BatchedTiledMatrix
        from repro.imc.noise import NoiseModel
        from repro.mapping.geometry import ArrayDims

        matrix = rng.standard_normal(shape)
        array = ArrayDims.square(32)
        kwargs = dict(noise=NoiseModel.typical(), seed=7, input_bits=bits, output_bits=bits)
        reference = BatchedTiledMatrix(matrix, array, backend="numpy64", **kwargs)
        threaded = BatchedTiledMatrix(matrix, array, backend=many_workers, **kwargs)
        inputs = rng.standard_normal((9, shape[1]))
        np.testing.assert_array_equal(
            threaded.mvm_batch(inputs), reference.mvm_batch(inputs)
        )

    @pytest.mark.parametrize("bits", [None, 5])
    @pytest.mark.parametrize("per_trial_inputs", [False, True])
    def test_monte_carlo_kernel_bit_identical(self, rng, many_workers, bits, per_trial_inputs):
        from repro.engine.kernels import MonteCarloTiledMatrix
        from repro.imc.noise import NoiseModel
        from repro.mapping.geometry import ArrayDims

        matrix = rng.standard_normal((40, 70))
        array = ArrayDims.square(32)
        kwargs = dict(
            trials=3, noise=NoiseModel.typical(), seed=5, input_bits=bits, output_bits=bits
        )
        reference = MonteCarloTiledMatrix(matrix, array, backend="numpy64", **kwargs)
        threaded = MonteCarloTiledMatrix(matrix, array, backend=many_workers, **kwargs)
        inputs = (
            rng.standard_normal((3, 6, 70)) if per_trial_inputs else rng.standard_normal((6, 70))
        )
        np.testing.assert_array_equal(
            threaded.mvm_batch(inputs), reference.mvm_batch(inputs)
        )
