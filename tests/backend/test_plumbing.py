"""End-to-end backend plumbing: CLI, engine contexts, SVD cache, store salting.

These tests pin the satellite contract of the backend subsystem: the CLI's
``--backend`` flag and ``$REPRO_BACKEND`` reach the kernels, an unknown name
fails with the registered listing, and the float32 precision policy salts its
store fingerprints so numpy64 and numpy32 artifacts coexist in one store
without ever colliding (and ``gc`` under one precision keeps the other's).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend, set_default_backend, using_backend
from repro.cli import main
from repro.engine.cache import DecompositionCache
from repro.engine.context import ExecutionContext
from repro.engine.sweep import SweepCache, map_sweep
from repro.imc.noise import NoiseModel
from repro.store import ExperimentStore, active_salt, code_version_salt, experiment_fingerprint


@pytest.fixture(autouse=True)
def _clean_default():
    set_default_backend(None)
    yield
    set_default_backend(None)


class TestCliBackendSelection:
    def test_backend_flag_e2e(self, capsys):
        """`--backend threaded` runs a full subcommand through the flag."""
        exit_code = main(["--backend", "threaded", "fig8"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 8" in captured

    def test_backend_flag_numpy32_e2e(self, capsys):
        exit_code = main(["--backend", "numpy32", "fig8"])
        assert exit_code == 0
        assert "Fig. 8" in capsys.readouterr().out

    def test_env_backend_e2e(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threaded")
        assert main(["fig8"]) == 0
        capsys.readouterr()

    def test_unknown_backend_flag_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--backend", "gpu", "fig8"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "unknown execution backend 'gpu'" in message
        assert "numpy64" in message and "numpy32" in message and "threaded" in message

    def test_unknown_env_backend_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(SystemExit) as excinfo:
            main(["fig8"])
        assert excinfo.value.code == 2
        assert "quantum" in capsys.readouterr().err

    def test_flag_beats_env(self, capsys, monkeypatch):
        """An explicit --backend wins even over a bogus $REPRO_BACKEND."""
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        assert main(["--backend", "numpy64", "fig8"]) == 0
        capsys.readouterr()


class TestContextPlumbing:
    def test_context_resolves_active_default(self, small_array):
        with using_backend("numpy32"):
            ctx = ExecutionContext(array=small_array)
        assert ctx.backend.name == "numpy32"

    def test_explicit_backend_beats_ambient(self, small_array):
        with using_backend("numpy32"):
            ctx = ExecutionContext(array=small_array, backend="threaded")
        assert ctx.backend.name == "threaded"

    def test_legacy_engine_pins_float64_oracle(self, small_array):
        with using_backend("numpy32"):
            ctx = ExecutionContext(array=small_array, engine="legacy")
        assert ctx.backend.policy.name == "float64"

    def test_legacy_engine_rejects_explicit_float32(self, small_array):
        with pytest.raises(ValueError, match="float64"):
            ExecutionContext(array=small_array, engine="legacy", backend="numpy32")

    def test_float32_plan_outputs(self, rng, small_array):
        weight = rng.standard_normal((16, 40))
        inputs = rng.standard_normal((4, 40))
        ref = ExecutionContext(array=small_array, noise=NoiseModel.typical(), seed=2)
        f32 = ExecutionContext(
            array=small_array, noise=NoiseModel.typical(), seed=2, backend="numpy32"
        )
        out_ref = ref.dense_plan(weight).run(inputs)
        out_f32 = f32.dense_plan(weight).run(inputs)
        assert out_f32.outputs.dtype == np.float32
        policy = get_backend("numpy32").policy
        scale = float(np.abs(out_ref.outputs).max())
        np.testing.assert_allclose(
            np.float64(out_f32.outputs),
            out_ref.outputs,
            rtol=policy.output_rtol,
            atol=policy.output_atol * scale,
        )
        # The exact software reference never degrades to float32.
        assert out_f32.exact.dtype == np.float64
        np.testing.assert_array_equal(out_f32.exact, out_ref.exact)

    def test_programming_stays_bit_identical_under_float32(self, rng, small_array):
        """The precision policy governs execution only, never programming."""
        matrix = rng.standard_normal((20, 40))
        ref = ExecutionContext(array=small_array, noise=NoiseModel.typical(), seed=5)
        f32 = ExecutionContext(
            array=small_array, noise=NoiseModel.typical(), seed=5, backend="numpy32"
        )
        np.testing.assert_array_equal(
            ref.dense_plan(matrix).stages[0].stored_matrix(),
            f32.dense_plan(matrix).stages[0].stored_matrix(),
        )


class TestSvdCachePrecision:
    def test_precisions_have_distinct_cache_entries(self, rng):
        cache = DecompositionCache()
        matrix = rng.standard_normal((12, 16))
        cache.svd(matrix, backend="numpy64")
        cache.svd(matrix, backend="numpy32")
        assert len(cache) == 2 and cache.misses == 2

    def test_bit_identical_family_shares_entries(self, rng):
        cache = DecompositionCache()
        matrix = rng.standard_normal((12, 16))
        cache.svd(matrix, backend="numpy64")
        cache.svd(matrix, backend="threaded")
        assert len(cache) == 1 and cache.hits == 1

    def test_float32_factors_have_float32_dtype(self, rng):
        u, s, vt = DecompositionCache().svd(rng.standard_normal((8, 8)), backend="numpy32")
        assert u.dtype == s.dtype == vt.dtype == np.float32


class TestFingerprintSaltSeparation:
    CONFIG = {"network": "resnet20", "groups": 4}

    def test_numpy32_salts_differently(self):
        with using_backend("numpy64"):
            fp64 = experiment_fingerprint("kind", self.CONFIG)
            salt64 = active_salt()
        with using_backend("numpy32"):
            fp32 = experiment_fingerprint("kind", self.CONFIG)
            salt32 = active_salt()
        assert fp64 != fp32
        assert salt64 == code_version_salt()
        assert salt32 == f"{code_version_salt()}+float32"

    def test_threaded_shares_float64_fingerprints(self):
        with using_backend("numpy64"):
            fp64 = experiment_fingerprint("kind", self.CONFIG)
        with using_backend("threaded"):
            fpth = experiment_fingerprint("kind", self.CONFIG)
        assert fp64 == fpth

    def test_store_artifacts_coexist_and_survive_gc(self, tmp_path):
        """numpy64 and numpy32 cells live side by side; gc keeps both."""
        store = ExperimentStore(tmp_path / "store")
        calls = []

        def cell(value: int) -> int:
            calls.append(value)
            return value * 10

        def run(backend_name: str):
            with using_backend(backend_name):
                cache = SweepCache(store, "demo/cell", lambda v: {"v": v}, int)
                return map_sweep(cell, [1, 2], cache=cache)

        assert run("numpy64") == [10, 20]
        assert run("numpy32") == [10, 20]
        assert len(calls) == 4, "different precisions must not share artifacts"
        # Warm re-runs hit their own precision's artifacts.
        assert run("numpy64") == [10, 20] and run("numpy32") == [10, 20]
        assert len(calls) == 4
        # gc under the float64 default keeps the float32 half (and vice versa).
        with using_backend("numpy64"):
            stats = store.gc()
        assert stats.removed == 0 and stats.kept == 4
        entries = store.ls()
        assert len(entries) == 4 and not any(entry.stale for entry in entries)

    def test_salt_env_override_still_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SALT", "custom")
        with using_backend("numpy32"):
            assert active_salt() == "custom+float32"
