"""The compiled (numba) backend: availability contract and kernel numerics.

Two independent surfaces, each testable without numba installed:

* **Degradation** (``without_numba``): the backend must stay *registered* —
  listed, policy-queryable, salt-valid — while resolving it raises
  :class:`BackendUnavailableError` naming the ``repro[compiled]`` extra.
  CI's compiled matrix legs run this suite *with* numba present, so the
  fixture simulates absence with an import blocker rather than relying on
  the host.

* **Numerics** (``CompiledBackend(force_python=True)``): the pure-Python
  seam runs the very same kernel function the JIT compiles — same code
  object, same arithmetic — so the tolerance-envelope contract against the
  numpy64 reference is exercised on every host, numba or not.  When numba
  *is* installed (the CI compiled legs), the JIT path runs the battery too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    BackendUnavailableError,
    CompiledBackend,
    COMPILED_POLICY,
    backend_availability,
    backend_names,
    backend_policy,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from repro.backend.compiled import COMPILED_EXTRA_HINT, numba_unavailable_reason


@pytest.fixture(autouse=True)
def _clean_default():
    set_default_backend(None)
    yield
    set_default_backend(None)


def _engine_pair(matrix, rng, monte_carlo=False, **kwargs):
    """(reference, compiled) engine kernels over the same programming."""
    from repro.engine.kernels import BatchedTiledMatrix, MonteCarloTiledMatrix
    from repro.imc.noise import NoiseModel
    from repro.mapping.geometry import ArrayDims

    array = ArrayDims.square(32)
    kwargs.setdefault("noise", NoiseModel.typical())
    cls = MonteCarloTiledMatrix if monte_carlo else BatchedTiledMatrix
    reference = cls(matrix, array, backend="numpy64", **kwargs)
    compiled = cls(matrix, array, backend=CompiledBackend(force_python=True), **kwargs)
    return reference, compiled


def _assert_within_envelope(compiled_out, reference_out):
    np.testing.assert_allclose(
        compiled_out,
        reference_out,
        rtol=COMPILED_POLICY.output_rtol,
        atol=COMPILED_POLICY.output_atol,
    )


class TestAvailabilityContract:
    def test_registered_even_without_numba(self, without_numba):
        """Absence of the extra must never unregister the backend."""
        assert "compiled" in backend_names()

    def test_availability_listing_names_numba(self, without_numba):
        availability = backend_availability()
        assert "compiled" in availability
        reason = availability["compiled"]
        assert reason is not None and "numba" in reason

    def test_other_backends_stay_available(self, without_numba):
        availability = backend_availability()
        for name in ("numpy64", "numpy32", "threaded"):
            assert availability[name] is None

    def test_get_backend_raises_with_extras_hint(self, without_numba):
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend("compiled")
        message = str(excinfo.value)
        assert "'compiled' is unavailable" in message
        assert "numba" in message
        assert "repro[compiled]" in message  # actionable: names the extra
        assert excinfo.value.backend_name == "compiled"
        assert excinfo.value.install_hint == COMPILED_EXTRA_HINT

    def test_unavailable_is_a_value_error(self, without_numba):
        """CLI parser.error / server 400 paths catch ValueError."""
        with pytest.raises(ValueError):
            get_backend("compiled")

    def test_resolve_backend_propagates_unavailability(self, without_numba):
        with pytest.raises(BackendUnavailableError):
            resolve_backend("compiled")

    def test_env_precedence_fall_through_fails_loud(self, without_numba, monkeypatch):
        """$REPRO_BACKEND=compiled on a numba-less host: actionable error,
        not a silent fallback to numpy64."""
        from repro.backend import active_backend

        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        with pytest.raises(BackendUnavailableError, match=r"repro\[compiled\]"):
            active_backend()

    def test_set_default_validates_availability_eagerly(self, without_numba):
        with pytest.raises(BackendUnavailableError):
            set_default_backend("compiled")

    def test_policy_and_salt_queryable_without_numba(self, without_numba):
        """Store maintenance never constructs the backend."""
        policy = backend_policy("compiled")
        assert policy.name == "float64-fused"
        assert policy.salt_token == "compiled"
        assert not policy.bit_identical

    def test_probe_reports_available_when_numba_importable(self):
        """On a host with numba (or the purepy seam) the probe says None."""
        pytest.importorskip("numba")
        assert numba_unavailable_reason() is None

    def test_purepy_seam_counts_as_available(self, without_numba, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
        assert numba_unavailable_reason() is None
        assert backend_availability()["compiled"] is None


class TestPolicy:
    def test_envelope_is_float64_scale(self):
        """The compiled envelope must sit far inside float32's: it is a ULP
        reassociation effect, not a precision trade."""
        from repro.backend.core import FLOAT32_POLICY

        assert COMPILED_POLICY.dtype == "float64"
        assert COMPILED_POLICY.output_rtol < FLOAT32_POLICY.output_rtol / 1e6
        assert COMPILED_POLICY.quantized_step_slack < FLOAT32_POLICY.quantized_step_slack

    def test_salt_token_distinct_from_float64_family(self):
        assert COMPILED_POLICY.salt_token == "compiled"
        assert COMPILED_POLICY.salt_token != ""


class TestKernelEquivalence:
    """Pure-Python seam vs. the numpy64 reference, within the policy envelope."""

    @pytest.mark.parametrize("bits", [None, 6])
    @pytest.mark.parametrize("shape", [(40, 70), (33, 65), (100, 1), (64, 64)])
    def test_batched_within_envelope(self, rng, shape, bits):
        matrix = rng.standard_normal(shape)
        reference, compiled = _engine_pair(
            matrix, rng, seed=7, input_bits=bits, output_bits=bits
        )
        inputs = rng.standard_normal((9, shape[1]))
        _assert_within_envelope(compiled.mvm_batch(inputs), reference.mvm_batch(inputs))

    @pytest.mark.parametrize("bits", [None, 5])
    @pytest.mark.parametrize("per_trial_inputs", [False, True])
    def test_monte_carlo_within_envelope(self, rng, bits, per_trial_inputs):
        matrix = rng.standard_normal((40, 70))
        reference, compiled = _engine_pair(
            matrix, rng, monte_carlo=True, trials=3, seed=5,
            input_bits=bits, output_bits=bits,
        )
        inputs = (
            rng.standard_normal((3, 6, 70)) if per_trial_inputs else rng.standard_normal((6, 70))
        )
        _assert_within_envelope(compiled.mvm_batch(inputs), reference.mvm_batch(inputs))

    def test_zero_inputs_pass_quantizer_untouched(self, rng):
        """All-zero vectors hit the quantizer's zero-max passthrough."""
        matrix = rng.standard_normal((40, 70))
        reference, compiled = _engine_pair(matrix, rng, seed=3, output_bits=6)
        inputs = np.zeros((4, 70))
        np.testing.assert_array_equal(
            compiled.mvm_batch(inputs), reference.mvm_batch(inputs)
        )

    def test_deterministic_across_calls(self, rng):
        matrix = rng.standard_normal((33, 65))
        _, compiled = _engine_pair(matrix, rng, seed=11, output_bits=6)
        inputs = rng.standard_normal((5, 65))
        np.testing.assert_array_equal(
            compiled.mvm_batch(inputs), compiled.mvm_batch(inputs)
        )

    def test_stored_matrix_matches_reference(self, rng):
        """Programming (write noise, quantization) is backend-independent."""
        matrix = rng.standard_normal((40, 70))
        reference, compiled = _engine_pair(matrix, rng, seed=9)
        np.testing.assert_array_equal(compiled.stored_matrix(), reference.stored_matrix())

    def test_empty_batch(self, rng):
        matrix = rng.standard_normal((40, 70))
        reference, compiled = _engine_pair(matrix, rng, seed=2, output_bits=6)
        inputs = np.zeros((0, 70))
        out = compiled.mvm_batch(inputs)
        assert out.shape == reference.mvm_batch(inputs).shape
        assert out.shape[0] == 0

    def test_base_protocol_ops_inherited(self, rng):
        """matmul / batched_matmul / einsum / svd are the numpy fallbacks."""
        backend = CompiledBackend(force_python=True)
        a = rng.standard_normal((4, 5))
        b = rng.standard_normal((5, 3))
        np.testing.assert_array_equal(backend.matmul(a, b), a @ b)
        stack_a = rng.standard_normal((3, 4, 5))
        stack_b = rng.standard_normal((3, 5, 2))
        np.testing.assert_array_equal(
            backend.batched_matmul(stack_a, stack_b), np.matmul(stack_a, stack_b)
        )
        np.testing.assert_array_equal(
            backend.einsum("ij,jk->ik", a, b), np.einsum("ij,jk->ik", a, b)
        )
        u, s, vt = backend.svd(a)
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-12)

    def test_warmup_runs_on_purepy_seam(self):
        CompiledBackend(force_python=True).warmup()

    def test_jit_path_within_envelope_when_numba_present(self, rng):
        """The actual JIT kernel (exercised on CI's compiled legs)."""
        pytest.importorskip("numba")
        from repro.engine.kernels import BatchedTiledMatrix
        from repro.imc.noise import NoiseModel
        from repro.mapping.geometry import ArrayDims

        matrix = rng.standard_normal((33, 65))
        array = ArrayDims.square(32)
        kwargs = dict(noise=NoiseModel.typical(), seed=7, input_bits=6, output_bits=6)
        reference = BatchedTiledMatrix(matrix, array, backend="numpy64", **kwargs)
        jitted = BatchedTiledMatrix(matrix, array, backend=get_backend("compiled"), **kwargs)
        inputs = rng.standard_normal((6, 65))
        _assert_within_envelope(jitted.mvm_batch(inputs), reference.mvm_batch(inputs))

    def test_jit_matches_purepy_seam_exactly_when_numba_present(self, rng):
        """JIT and pure-Python run the same code object: identical results
        would be ideal, but LLVM may still fuse/reassociate — so hold the
        two variants to the policy envelope against each other."""
        pytest.importorskip("numba")
        from repro.engine.kernels import BatchedTiledMatrix
        from repro.imc.noise import NoiseModel
        from repro.mapping.geometry import ArrayDims

        matrix = rng.standard_normal((40, 70))
        array = ArrayDims.square(32)
        kwargs = dict(noise=NoiseModel.typical(), seed=13, output_bits=5)
        pure = BatchedTiledMatrix(
            matrix, array, backend=CompiledBackend(force_python=True), **kwargs
        )
        jitted = BatchedTiledMatrix(matrix, array, backend=get_backend("compiled"), **kwargs)
        inputs = rng.standard_normal((6, 70))
        _assert_within_envelope(jitted.mvm_batch(inputs), pure.mvm_batch(inputs))
