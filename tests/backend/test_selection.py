"""Backend selection and resolution precedence tests.

Precedence: explicit argument > process default (``using_backend`` /
``set_default_backend``, the CLI ``--backend``) > ``$REPRO_BACKEND`` >
``numpy64``.
"""

from __future__ import annotations

import pytest

from repro.backend import (
    Backend,
    active_backend,
    backend_names,
    default_backend_name,
    get_backend,
    resolve_backend,
    set_default_backend,
    using_backend,
)


@pytest.fixture(autouse=True)
def _clean_default():
    set_default_backend(None)
    yield
    set_default_backend(None)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(backend_names()) >= {"numpy64", "numpy32", "threaded", "compiled"}

    def test_instances_are_memoized(self):
        assert get_backend("numpy64") is get_backend("numpy64")

    def test_unknown_backend_message_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("cuda")
        message = str(excinfo.value)
        assert "unknown execution backend 'cuda'" in message
        for name in ("numpy64", "numpy32", "threaded"):
            assert name in message
        assert "REPRO_BACKEND" in message


class TestPrecedence:
    def test_builtin_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "numpy64"
        assert active_backend().name == "numpy64"

    def test_env_overrides_builtin_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy32")
        assert active_backend().name == "numpy32"

    def test_process_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy32")
        set_default_backend("threaded")
        assert active_backend().name == "threaded"

    def test_using_backend_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy32")
        with using_backend("numpy64"):
            assert active_backend().name == "numpy64"
            with using_backend("threaded"):  # nested scopes stack
                assert active_backend().name == "threaded"
            assert active_backend().name == "numpy64"
        assert active_backend().name == "numpy32"

    def test_using_backend_none_keeps_surrounding_default(self):
        with using_backend("numpy32"):
            with using_backend(None):
                assert active_backend().name == "numpy32"

    def test_unknown_env_backend_fails_on_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "not_a_backend")
        with pytest.raises(ValueError, match="not_a_backend"):
            active_backend()

    def test_set_default_validates_eagerly(self):
        with pytest.raises(ValueError):
            set_default_backend("bogus")

    def test_set_default_inside_open_scope_survives_scope_exit(self, monkeypatch):
        """set_default_backend neither breaks nor is reverted by an open scope."""
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with using_backend("numpy32"):
            set_default_backend("threaded")
            assert active_backend().name == "numpy32"  # scope still wins inside
        assert active_backend().name == "threaded"  # process default survives

    def test_out_of_order_scope_exits_do_not_corrupt(self):
        """Scopes exited out of push order each remove only their own entry."""
        outer = using_backend("numpy32")
        inner = using_backend("threaded")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # exit outer first
        assert active_backend().name == "threaded"  # inner scope intact
        inner.__exit__(None, None, None)

    def test_using_backend_restores_after_exception(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with pytest.raises(RuntimeError):
            with using_backend("numpy32"):
                raise RuntimeError("boom")
        assert active_backend().name == "numpy64"


class TestResolve:
    def test_resolves_none_to_active(self):
        with using_backend("numpy32"):
            assert resolve_backend(None).name == "numpy32"

    def test_resolves_name(self):
        assert resolve_backend("threaded").name == "threaded"

    def test_passes_instances_through(self):
        instance = Backend()
        assert resolve_backend(instance) is instance

    def test_using_backend_honors_passed_instance(self):
        """A configured instance — registered-name or custom — scopes as itself."""
        from repro.backend import NumpyBackend, ThreadedBackend
        from repro.backend.core import FLOAT64_POLICY

        configured = ThreadedBackend(max_workers=2)
        with using_backend(configured) as scoped:
            assert scoped is configured
            assert active_backend() is configured
            assert active_backend().max_workers == 2
        custom = NumpyBackend("custom64", FLOAT64_POLICY)  # never registered
        with using_backend(custom):
            assert active_backend() is custom


class TestPolicyRegistry:
    def test_salt_tokens_do_not_instantiate_backends(self, monkeypatch):
        """Store ls/gc must survive a broken $REPRO_BACKEND_THREADS.

        Salt tokens are read from the declared policies, so querying them
        (as valid_salts() does) never constructs the threaded backend.
        """
        from repro.backend import registered_salt_tokens
        from repro.backend.core import _INSTANCES

        monkeypatch.setenv("REPRO_BACKEND_THREADS", "0")
        monkeypatch.delitem(_INSTANCES, "threaded", raising=False)
        assert set(registered_salt_tokens()) == {"", "float32", "compiled"}
        assert "threaded" not in _INSTANCES

    def test_compiled_salt_known_without_numba(self, without_numba):
        """Store staleness must count 'compiled' valid even when numba is absent.

        The compiled backend's salt token comes from its declared policy, so
        gc on a host without the extra never treats compiled-salted artifacts
        (written elsewhere, e.g. on a shared NFS store) as stale garbage.
        """
        from repro.backend import registered_salt_tokens

        assert "compiled" in registered_salt_tokens()
