"""Tests for text-table formatting."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_cycles, format_kv, format_percent, format_table, markdown_table


class TestFormatCycles:
    def test_thousands(self):
        assert format_cycles(44_000) == "44k"
        assert format_cycles(1_500) == "2k"

    def test_millions(self):
        assert format_cycles(1_020_000) == "1.02M"

    def test_small_values(self):
        assert format_cycles(900) == "900"


class TestFormatPercent:
    def test_default(self):
        assert format_percent(90.54) == "90.5%"

    def test_decimals(self):
        assert format_percent(90.54, decimals=2) == "90.54%"


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_title_included(self):
        text = format_table(["x"], [["1"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_none_and_float_cells(self):
        text = format_table(["x", "y"], [[None, 1.2345]])
        assert "-" in text and "1.23" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4


class TestFormatKV:
    def test_alignment(self):
        text = format_kv({"short": 1, "a much longer key": 2.5})
        lines = text.splitlines()
        assert all(" : " in line for line in lines)

    def test_title(self):
        assert format_kv({"a": 1}, title="T").splitlines()[0] == "T"
