"""Tests for ASCII plotting."""

from __future__ import annotations

import pytest

from repro.analysis.plots import ascii_bars, ascii_scatter


class TestScatter:
    def test_contains_markers_and_legend(self):
        text = ascii_scatter(
            {"ours": [(10, 90), (20, 95)], "baseline": [(100, 96)]},
            title="panel",
            x_label="cycles",
            y_label="acc",
        )
        assert "panel" in text
        assert "o=ours" in text and "x=baseline" in text
        assert "cycles" in text and "acc" in text
        grid_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert any("o" in line for line in grid_lines)
        assert any("x" in line for line in grid_lines)

    def test_empty_series(self):
        assert ascii_scatter({"a": []}) == "(no data)"

    def test_single_point(self):
        text = ascii_scatter({"a": [(5, 5)]})
        assert "o" in text

    def test_too_small_plot_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({"a": [(1, 1)]}, width=2, height=2)

    def test_dimensions(self):
        text = ascii_scatter({"a": [(0, 0), (1, 1)]}, width=40, height=10)
        grid_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len(grid_lines) == 10
        assert all(len(line) <= 41 for line in grid_lines)


class TestBars:
    def test_bars_scale_with_values(self):
        text = ascii_bars({"small": 0.2, "large": 1.0}, width=20)
        lines = {line.split("|")[0].strip(): line for line in text.splitlines()}
        assert lines["large"].count("#") > lines["small"].count("#")

    def test_values_printed(self):
        text = ascii_bars({"a": 0.5})
        assert "0.500" in text

    def test_empty(self):
        assert ascii_bars({}) == "(no data)"

    def test_title(self):
        assert ascii_bars({"a": 1.0}, title="energy").splitlines()[0] == "energy"

    def test_zero_values_handled(self):
        text = ascii_bars({"a": 0.0, "b": 0.0})
        assert "0.000" in text


class TestScatterEdgeCases:
    def test_degenerate_spans_use_unit_fallback(self):
        """All points identical: both spans are zero and must not divide by zero."""
        text = ascii_scatter({"a": [(3.0, 7.0), (3.0, 7.0)]})
        assert "top=7.00, bottom=7.00" in text
        assert "left=3, right=3" in text

    def test_markers_cycle_past_the_palette(self):
        series = {f"s{i}": [(i, i)] for i in range(10)}
        text = ascii_scatter(series)
        legend = text.splitlines()[0]
        # Ninth and tenth series reuse the first two markers.
        assert "o=s0" in legend and "o=s8" in legend and "x=s9" in legend

    def test_later_series_overwrite_overlapping_points(self):
        text = ascii_scatter({"first": [(0, 0), (1, 1)], "second": [(0, 0)]})
        grid = [line for line in text.splitlines() if line.startswith("|")]
        bottom_left = grid[-1][1]
        assert bottom_left == "x", "the last-drawn series wins the shared cell"


class TestBarsEdgeCases:
    def test_custom_value_format(self):
        text = ascii_bars({"a": 0.125}, value_format="{:.1%}")
        assert "12.5%" in text

    def test_non_positive_maximum_normalizes_to_unit(self):
        text = ascii_bars({"a": -1.0, "b": -2.0})
        assert "-1.000" in text and "-2.000" in text
        assert "#" not in text  # negative bars render empty, not inverted

    def test_labels_are_aligned(self):
        text = ascii_bars({"short": 1.0, "a much longer label": 0.5})
        positions = {line.index("|") for line in text.splitlines()}
        assert len(positions) == 1
