"""Tests for Pareto-front utilities."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import TradeoffPoint, dominates, hypervolume, pareto_front


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1.0, 10.0), (2.0, 5.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_partial_improvement_dominates(self):
        assert dominates((1.0, 5.0), (1.0, 4.0))
        assert dominates((1.0, 5.0), (2.0, 5.0))

    def test_incomparable(self):
        assert not dominates((1.0, 1.0), (2.0, 5.0))
        assert not dominates((2.0, 5.0), (1.0, 1.0))


class TestParetoFront:
    def test_simple_front(self):
        points = [
            TradeoffPoint(cost=10, quality=90, label="a"),
            TradeoffPoint(cost=20, quality=95, label="b"),
            TradeoffPoint(cost=30, quality=92, label="c"),  # dominated by b
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["a", "b"]

    def test_front_sorted_by_cost(self):
        points = [
            TradeoffPoint(cost=30, quality=99),
            TradeoffPoint(cost=10, quality=90),
            TradeoffPoint(cost=20, quality=95),
        ]
        costs = [p.cost for p in pareto_front(points)]
        assert costs == sorted(costs)

    def test_duplicates_kept(self):
        points = [TradeoffPoint(cost=1, quality=1), TradeoffPoint(cost=1, quality=1)]
        assert len(pareto_front(points)) == 2

    def test_custom_keys(self):
        rows = [{"cycles": 10, "acc": 80}, {"cycles": 5, "acc": 85}]
        front = pareto_front(rows, cost=lambda r: r["cycles"], quality=lambda r: r["acc"])
        assert front == [rows[1]]

    def test_empty(self):
        assert pareto_front([]) == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=20
        )
    )
    def test_front_members_are_not_dominated(self, raw_points):
        points = [TradeoffPoint(cost=c, quality=q) for c, q in raw_points]
        front = pareto_front(points)
        assert front
        for member in front:
            assert not any(
                dominates((p.cost, p.quality), (member.cost, member.quality)) for p in points
            )


class TestHypervolume:
    def test_zero_for_empty(self):
        assert hypervolume([], 100, 0) == 0.0

    def test_better_front_larger_volume(self):
        good = [TradeoffPoint(cost=10, quality=95)]
        bad = [TradeoffPoint(cost=50, quality=80)]
        assert hypervolume(good, 100, 0) > hypervolume(bad, 100, 0)

    def test_points_outside_reference_ignored(self):
        points = [TradeoffPoint(cost=200, quality=95)]
        assert hypervolume(points, 100, 0) == 0.0
