"""End-to-end integration tests covering the full pipeline of the paper:

train a (small) model → compress it with group low-rank → quantize it (QAT) →
map it onto IMC arrays → count cycles / energy → execute it on the crossbar
simulator with noise.  Every stage uses the public API exactly as the examples
and benchmarks do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import lowrank, mapping, quantization
from repro.data.loaders import DataLoader
from repro.data.synthetic import make_tiny_dataset
from repro.imc.energy import EnergyModel
from repro.imc.noise import NoiseModel
from repro.imc.peripherals import CellSpec, PeripheralSuite
from repro.imc.simulator import IMCSimulator
from repro.lowrank.layers import GroupLowRankConv2d
from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.nn.models import SimpleCNN
from repro.nn.modules import Conv2d
from repro.nn.optim import Adam
from repro.training.evaluate import evaluate_accuracy
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def trained_model_and_data():
    """A small CNN trained briefly on synthetic data (shared across tests)."""
    dataset = make_tiny_dataset(num_samples=160, num_classes=4, image_size=10, seed=0)
    train, test = dataset.split(0.75, seed=0)
    train_loader = DataLoader(train, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test, batch_size=32, shuffle=False)
    model = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
    trainer.fit(train_loader, epochs=5)
    return model, train_loader, test_loader


class TestTrainCompressEvaluate:
    def test_training_reached_useful_accuracy(self, trained_model_and_data):
        model, _, test_loader = trained_model_and_data
        assert evaluate_accuracy(model, test_loader) > 0.4  # chance is 0.25

    def test_compression_preserves_most_accuracy(self, trained_model_and_data):
        model, train_loader, test_loader = trained_model_and_data
        baseline = evaluate_accuracy(model, test_loader)

        compressed = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
        compressed.load_state_dict(model.state_dict())
        report = lowrank.compress_model(
            compressed, lowrank.CompressionSpec(rank_divisor=2, groups=2)
        )
        assert report.compression_ratio > 1.0
        compressed_accuracy = evaluate_accuracy(compressed, test_loader)
        # High-rank grouped compression should stay within a few points of the dense model.
        assert compressed_accuracy >= baseline - 0.25

    def test_grouping_helps_at_aggressive_rank(self, trained_model_and_data):
        """Theorem 1 end to end: at the same rank budget, grouped compression loses less accuracy."""
        model, _, test_loader = trained_model_and_data

        def compressed_accuracy(groups: int) -> float:
            clone = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
            clone.load_state_dict(model.state_dict())
            lowrank.compress_model(clone, lowrank.CompressionSpec(rank_divisor=8, groups=groups))
            return evaluate_accuracy(clone, test_loader)

        # Grouped compression has strictly lower reconstruction error; on a tiny
        # test set this translates to accuracy at least as good minus noise.
        assert compressed_accuracy(4) >= compressed_accuracy(1) - 0.1

    def test_fine_tuning_recovers_accuracy(self, trained_model_and_data):
        model, train_loader, test_loader = trained_model_and_data
        clone = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
        clone.load_state_dict(model.state_dict())
        lowrank.compress_model(clone, lowrank.CompressionSpec(rank_divisor=4, groups=2))
        before = evaluate_accuracy(clone, test_loader)
        Trainer(clone, Adam(clone.parameters(), lr=0.005)).fit(train_loader, epochs=3)
        after = evaluate_accuracy(clone, test_loader)
        assert after >= before - 0.05

    def test_qat_on_compressed_model_trains(self, trained_model_and_data):
        model, train_loader, _ = trained_model_and_data
        clone = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
        clone.load_state_dict(model.state_dict())
        lowrank.compress_model(clone, lowrank.CompressionSpec(rank_divisor=2, groups=2))
        quantization.apply_qat(clone, quantization.QuantizationConfig(weight_bits=4, activation_bits=4))
        trainer = Trainer(clone, Adam(clone.parameters(), lr=0.005))
        history = trainer.fit(train_loader, epochs=2)
        assert history.epochs[-1].train_loss <= history.epochs[0].train_loss + 0.1


class TestMappingAndHardware:
    def test_compressed_model_cycle_accounting(self, trained_model_and_data):
        """Layer-by-layer cycle accounting runs on a compressed model's actual layers.

        Note: these test layers are tiny (few output channels on small feature
        maps), a regime where low-rank factors cannot beat the dense mapping —
        the paper-scale wins are asserted in tests/experiments/test_common.py;
        here we check the accounting itself is consistent and positive.
        """
        model, _, _ = trained_model_and_data
        clone = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
        clone.load_state_dict(model.state_dict())
        lowrank.compress_model(clone, lowrank.CompressionSpec(rank_divisor=8, groups=2))

        array = ArrayDims.square(32)
        hw = {"features.3": 5, "features.6": 3}  # input sizes after the strided convs (input 10x10)
        dense_total = 0
        compressed_total = 0
        for name, module in clone.named_modules():
            if isinstance(module, GroupLowRankConv2d):
                geometry = ConvGeometry(
                    module.in_channels,
                    module.out_channels,
                    module.kernel_size[0],
                    module.kernel_size[1],
                    hw[name],
                    hw[name],
                    stride=module.stride[0],
                    padding=module.padding[0],
                    name=name,
                )
                dense_total += mapping.im2col_cycles(geometry, array).cycles
                compressed_total += mapping.lowrank_cycles(
                    geometry, array, rank=module.rank, groups=module.groups, use_sdk=True
                ).cycles
        assert 0 < dense_total
        assert 0 < compressed_total
        # Even in this unfavourable regime the two-stage mapping stays within a
        # small constant factor of the dense mapping.
        assert compressed_total <= 2 * dense_total

    def test_energy_model_on_compressed_layer(self):
        geometry = ConvGeometry(16, 16, 3, 3, 10, 10, padding=1, name="x")
        array = ArrayDims.square(32)
        model = EnergyModel()
        ours = model.lowrank_energy(geometry, array, rank=2, groups=4, use_sdk=True).energy_pj
        dense = model.im2col_energy(geometry, array).energy_pj
        assert ours < dense

    def test_crossbar_execution_of_compressed_layer(self, trained_model_and_data):
        """Execute one compressed layer on the noisy crossbar simulator and compare to software."""
        model, _, _ = trained_model_and_data
        conv = None
        for _, module in model.named_modules():
            if isinstance(module, Conv2d) and module.kernel_size == (3, 3) and module.in_channels > 3:
                conv = module
                break
        assert conv is not None
        weight = conv.weight.data
        geometry = ConvGeometry(
            conv.in_channels, conv.out_channels, 3, 3, 8, 8, stride=1, padding=1, name="sim"
        )
        simulator = IMCSimulator(
            array=ArrayDims.square(32),
            peripherals=PeripheralSuite(cell=CellSpec(conductance_levels=1024)),
            noise=NoiseModel(conductance_sigma=0.02, seed=0),
        )
        inputs = np.random.default_rng(0).standard_normal((1, conv.in_channels, 8, 8))
        dense_result = simulator.run_conv_im2col(weight, inputs, geometry)
        lowrank_result = simulator.run_conv_lowrank(weight, inputs, geometry, rank=conv.out_channels // 2, groups=2)
        assert dense_result.relative_error < 0.15
        assert lowrank_result.relative_error < 0.6
        assert lowrank_result.allocated_tiles > 0

    def test_full_report_strings(self, trained_model_and_data):
        """Compression and QAT reports render human-readable summaries."""
        model, _, _ = trained_model_and_data
        clone = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 16), seed=0)
        clone.load_state_dict(model.state_dict())
        report = lowrank.compress_model(clone, lowrank.CompressionSpec(rank_divisor=4, groups=2))
        qat_report = quantization.apply_qat(clone)
        assert "compression" in report.describe()
        assert "quantized" in qat_report.describe()
