"""Smoke tests keeping the example scripts runnable.

The heavyweight examples (those that train models or sweep both networks) are
exercised manually / by the benchmark harness; here the fast, analysis-only
examples are executed end to end so API changes cannot silently break them.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    """Execute an example script as ``__main__`` with the given argv and return its stdout."""
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} is missing"
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_compress_resnet20_example(self, capsys):
        out = run_example("compress_resnet20.py", ["--groups", "2", "--rank-divisor", "8"], capsys)
        assert "ResNet-20 compressed with g=2" in out
        assert "network computing cycles" in out
        assert "speedup vs im2col" in out

    def test_pareto_sweep_example(self, capsys):
        out = run_example("pareto_sweep.py", ["--network", "resnet20", "--array", "64"], capsys)
        assert "Pareto-optimal" in out
        assert "headline" in out
        assert "PatDNN" in out

    def test_rank_allocation_example(self, capsys):
        out = run_example("rank_allocation.py", [], capsys)
        assert "uniform rank rule vs. sensitivity-driven allocation" in out
        assert "per-layer ranks under the cycle budget" in out
        assert "deployment comparison" in out

    def test_noise_robustness_example(self, capsys):
        out = run_example("noise_robustness.py", ["--trials", "2"], capsys)
        assert "relative output error" in out
        assert "Monte-Carlo trials" in out
        assert "typical_rram" in out and "worst_case_rram" in out

    def test_layer_families_example(self, capsys):
        out = run_example("layer_families.py", ["--trials", "2"], capsys)
        assert "modern layers on a 64x64 crossbar" in out
        assert "depthwise" in out and "attention" in out
        assert "block-diag / dense" in out

    def test_all_examples_present(self):
        expected = {
            "quickstart.py",
            "layer_families.py",
            "compress_resnet20.py",
            "pareto_sweep.py",
            "imc_energy_report.py",
            "noise_robustness.py",
            "rank_allocation.py",
        }
        found = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert expected <= found
