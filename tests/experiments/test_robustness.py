"""Tests for the Monte-Carlo hardware-scenario robustness experiment."""

from __future__ import annotations

import json

import pytest

import repro.experiments  # noqa: F401 — populates the experiment registry
from repro.engine.sweep import experiment_registry, to_jsonable
from repro.experiments.robustness import (
    MAPPINGS,
    format_robustness,
    representative_layer,
    run_robustness,
)


@pytest.fixture(scope="module")
def small_result():
    return run_robustness(
        networks=("resnet20",),
        scenarios=("ideal", "typical_rram", "faulty"),
        trials=3,
        batch=8,
    )


class TestRunRobustness:
    def test_point_grid_is_complete(self, small_result):
        assert len(small_result.points) == 3 * len(MAPPINGS)
        for scenario in small_result.scenarios:
            for mapping in MAPPINGS:
                point = small_result.point("resnet20", scenario, mapping)
                assert point.trials == 3
                assert point.allocated_tiles > 0

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError):
            run_robustness(networks=("resnet20",), scenarios=("nope",), trials=1)

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            run_robustness(networks=("resnet20",), trials=0)

    def test_ideal_scenario_has_zero_degradation(self, small_result):
        for mapping in MAPPINGS:
            point = small_result.point("resnet20", "ideal", mapping)
            assert point.accuracy_drop == pytest.approx(0.0, abs=1e-9)
            assert point.mean_error == pytest.approx(point.ideal_error, rel=1e-9)
            # No noise → no trial-to-trial spread.
            assert point.std_error == pytest.approx(0.0, abs=1e-12)

    def test_noisy_scenarios_degrade(self, small_result):
        for scenario in ("typical_rram", "faulty"):
            for mapping in MAPPINGS:
                point = small_result.point("resnet20", scenario, mapping)
                assert point.mean_error > point.ideal_error
                assert point.worst_error >= point.mean_error

    def test_energy_is_scenario_invariant_and_normalized(self, small_result):
        """Energy depends on the mapping, not the noise corner."""
        for mapping in MAPPINGS:
            energies = {
                small_result.point("resnet20", s, mapping).energy_pj_per_mvm
                for s in small_result.scenarios
            }
            assert len(energies) == 1
        for scenario in small_result.scenarios:
            dense = small_result.point("resnet20", scenario, "im2col")
            assert dense.energy_ratio_vs_im2col == pytest.approx(1.0)
            for mapping in MAPPINGS:
                assert small_result.point("resnet20", scenario, mapping).energy_pj_per_mvm > 0

    def test_representative_layer_is_compressible(self):
        geometry = representative_layer("resnet20")
        assert geometry.kernel_h == geometry.kernel_w == 3
        assert geometry.name

    def test_parallel_matches_serial(self, small_result):
        parallel = run_robustness(
            networks=("resnet20",),
            scenarios=("ideal", "typical_rram", "faulty"),
            trials=3,
            batch=8,
            parallel=True,
            max_workers=2,
        )
        for serial_point, parallel_point in zip(small_result.points, parallel.points):
            assert serial_point == parallel_point

    def test_missing_point_raises(self, small_result):
        with pytest.raises(KeyError):
            small_result.point("resnet20", "ideal", "unknown_mapping")


class TestFormattingAndRegistration:
    def test_format_contains_grid(self, small_result):
        text = format_robustness(small_result)
        assert "Robustness — resnet20" in text
        assert "typical_rram" in text and "faulty" in text
        assert "group_lowrank" in text
        assert "Monte-Carlo trials" in text

    def test_registered_experiment(self):
        registry = experiment_registry()
        assert "robustness" in registry
        assert registry["robustness"].runner is run_robustness

    def test_serializes_to_json(self, small_result):
        document = to_jsonable(small_result)
        payload = json.dumps(document)
        assert "typical_rram" in payload
        assert len(document["points"]) == len(small_result.points)
