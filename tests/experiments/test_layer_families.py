"""Tests for the modern-layer mapping-efficiency experiment."""

from __future__ import annotations

import json

import pytest

import repro.experiments  # noqa: F401 — populates the experiment registry
from repro.engine.sweep import experiment_registry, to_jsonable
from repro.experiments.layer_families import (
    FAMILIES,
    FAMILY_NETWORKS,
    format_layer_families,
    representative_family_layer,
    run_layer_families,
)
from repro.mapping.geometry import GroupedConvGeometry, layer_family
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def small_result():
    return run_layer_families(
        scenarios=("ideal", "typical_rram"),
        trials=3,
        batch=8,
    )


class TestRunLayerFamilies:
    def test_point_grid_is_complete(self, small_result):
        assert len(small_result.points) == len(FAMILIES) * 2
        for family in FAMILIES:
            for scenario in ("ideal", "typical_rram"):
                point = small_result.point(family, scenario)
                assert point.trials == 3
                assert point.network == FAMILY_NETWORKS[family]
                assert point.allocated_tiles > 0

    def test_unknown_family_fails_fast(self):
        with pytest.raises(ValueError, match="unknown layer family"):
            run_layer_families(families=("squeeze",), trials=1)

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError):
            run_layer_families(scenarios=("nope",), trials=1)

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            run_layer_families(trials=0)

    def test_representative_layers_belong_to_their_family(self):
        for family in FAMILIES:
            geometry = representative_family_layer(family)
            assert layer_family(geometry) == family
            assert geometry.name

    def test_closed_form_tile_prediction_holds(self, small_result):
        """Allocated tiles equal the block-diagonal closed form, per family."""
        for point in small_result.points:
            assert point.allocated_tiles == point.predicted_tiles
            assert point.allocated_tiles <= point.dense_tiles
            assert point.tile_savings == pytest.approx(
                point.dense_tiles / point.allocated_tiles
            )

    def test_block_diagonal_families_save_tiles(self, small_result):
        for family in ("grouped", "depthwise"):
            point = small_result.point(family, "ideal")
            assert point.groups > 1
            assert point.tile_savings >= 2.0
        for family in ("conv", "attention"):
            assert small_result.point(family, "ideal").tile_savings == pytest.approx(1.0)

    def test_depthwise_utilization_is_poor(self, small_result):
        """The structural punchline: depthwise blocks leave tiles nearly idle."""
        depthwise = small_result.point("depthwise", "ideal")
        grouped = small_result.point("grouped", "ideal")
        assert depthwise.cell_utilization < 0.05
        assert depthwise.cell_utilization < grouped.cell_utilization
        assert 0.0 < small_result.point("conv", "ideal").cell_utilization <= 1.0

    def test_noisy_scenarios_degrade(self, small_result):
        for family in FAMILIES:
            ideal = small_result.point(family, "ideal")
            noisy = small_result.point(family, "typical_rram")
            assert noisy.mean_error > ideal.mean_error
            assert noisy.worst_error >= noisy.mean_error
            assert ideal.std_error == pytest.approx(0.0, abs=1e-12)

    def test_energy_is_scenario_invariant(self, small_result):
        for family in FAMILIES:
            energies = {
                small_result.point(family, s).energy_pj_per_mvm
                for s in ("ideal", "typical_rram")
            }
            assert len(energies) == 1

    def test_grouped_weight_layout_matches_geometry(self):
        from repro.experiments.layer_families import _family_weight

        geometry = representative_family_layer("grouped")
        assert isinstance(geometry, GroupedConvGeometry)
        weight = _family_weight(geometry, seed=0)
        assert weight.shape == (
            geometry.out_channels,
            geometry.group_in_channels,
            geometry.kernel_h,
            geometry.kernel_w,
        )

    def test_parallel_matches_serial(self, small_result):
        parallel = run_layer_families(
            scenarios=("ideal", "typical_rram"),
            trials=3,
            batch=8,
            parallel=True,
            max_workers=2,
        )
        assert parallel.points == small_result.points

    def test_store_roundtrip_is_identical(self, small_result, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        kwargs = dict(scenarios=("ideal", "typical_rram"), trials=3, batch=8)
        cold = run_layer_families(store=store, **kwargs)
        warm = run_layer_families(store=store, **kwargs)
        assert cold.points == warm.points == small_result.points
        assert to_jsonable(cold) == to_jsonable(warm)

    def test_missing_point_raises(self, small_result):
        with pytest.raises(KeyError):
            small_result.point("conv", "unknown_scenario")


class TestFormattingAndRegistration:
    def test_format_contains_grid(self, small_result):
        text = format_layer_families(small_result)
        assert "Layer families — mapping efficiency" in text
        for family in FAMILIES:
            assert family in text
        assert "typical_rram" in text
        assert "savings" in text

    def test_registered_experiment(self):
        registry = experiment_registry()
        assert "layer_families" in registry
        assert registry["layer_families"].runner is run_layer_families

    def test_in_full_suite(self):
        from repro.experiments.runner import SUITE_EXPERIMENTS

        assert "layer_families" in SUITE_EXPERIMENTS

    def test_serializes_to_json(self, small_result):
        document = to_jsonable(small_result)
        payload = json.dumps(document)
        assert "tiny_transformer" in payload
        assert len(document["points"]) == len(small_result.points)
