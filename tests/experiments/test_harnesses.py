"""Tests for the Table I / Fig. 6–9 experiment harnesses (reduced sweeps)."""

from __future__ import annotations

import pytest

from repro.experiments.fig6 import format_fig6, headline_metrics, run_fig6
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.experiments.fig8 import format_fig8, quantization_speedup, run_fig8
from repro.experiments.fig9 import format_fig9, iso_accuracy_speedup, run_fig9
from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(networks=("resnet20",), array_sizes=(64,), group_counts=(1, 4), rank_divisors=(2, 8))


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(
        networks=("resnet20",),
        array_sizes=(64,),
        group_counts=(1, 4),
        rank_divisors=(2, 8, 16),
        pruning_entries=(1, 4, 6, 8),
    )


class TestTable1:
    def test_row_count(self, table1_result):
        assert len(table1_result.rows) == 4

    def test_row_lookup(self, table1_result):
        row = table1_result.row("resnet20", 4, 8)
        assert row.rank_label == "m/8"
        assert row.accuracy > 80

    def test_missing_row_raises(self, table1_result):
        with pytest.raises(KeyError):
            table1_result.row("resnet20", 2, 8)

    def test_sdk_never_slower_than_plain(self, table1_result):
        for row in table1_result.rows:
            for size, with_sdk in row.cycles_with_sdk.items():
                assert with_sdk <= row.cycles_without_sdk[size]

    def test_accuracy_improves_with_groups_at_fixed_rank(self, table1_result):
        g1 = table1_result.row("resnet20", 1, 8).accuracy
        g4 = table1_result.row("resnet20", 4, 8).accuracy
        assert g4 >= g1

    def test_best_accuracy_row(self, table1_result):
        best = table1_result.best_accuracy("resnet20")
        assert best.accuracy == max(r.accuracy for r in table1_result.rows)

    def test_format(self, table1_result):
        text = format_table1(table1_result, array_sizes=(64,))
        assert "Table I" in text and "m/8" in text


class TestFig6:
    def test_panel_structure(self, fig6_result):
        panel = fig6_result.panel("resnet20", 64)
        assert panel.baseline.accuracy == pytest.approx(91.6)
        assert panel.ours and panel.ours_pareto and panel.patdnn and panel.pairs
        assert len(panel.patdnn) == 4

    def test_missing_panel_raises(self, fig6_result):
        with pytest.raises(KeyError):
            fig6_result.panel("resnet20", 256)

    def test_pareto_subset_of_sweep(self, fig6_result):
        panel = fig6_result.panel("resnet20", 64)
        sweep_keys = {(p.accuracy, p.cycles) for p in panel.ours}
        assert all((p.accuracy, p.cycles) in sweep_keys for p in panel.ours_pareto)

    def test_ours_beats_baseline_cycles(self, fig6_result):
        panel = fig6_result.panel("resnet20", 64)
        assert min(p.cycles for p in panel.ours_pareto) < panel.baseline.cycles

    def test_headline_metrics_positive(self, fig6_result):
        metrics = headline_metrics(fig6_result.panel("resnet20", 64))
        assert metrics["max_speedup"] > 1.0
        assert metrics["max_accuracy_gain"] > 0.0

    def test_series_for_plotting(self, fig6_result):
        series = fig6_result.panel("resnet20", 64).series()
        assert set(series) == {"ours", "PatDNN", "PAIRS", "baseline"}

    def test_format(self, fig6_result):
        text = format_fig6(fig6_result, include_plots=False)
        assert "Fig. 6" in text and "PatDNN" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(networks=("resnet20",), array_sizes=(32, 64))

    def test_bars_present(self, result):
        assert len(result.bars) == 2
        bar = result.bar("resnet20", 64)
        assert bar.im2col_energy_pj > 0

    def test_ours_most_efficient(self, result):
        """The Fig. 7 ordering: ours < pattern pruning < im2col for every bar."""
        for bar in result.bars:
            assert bar.ours_normalized < bar.pattern_normalized < 1.0

    def test_savings_properties(self, result):
        assert 0 < result.max_saving_vs_pattern < 1
        assert 0 < result.max_saving_vs_im2col < 1

    def test_missing_bar_raises(self, result):
        with pytest.raises(KeyError):
            result.bar("resnet20", 256)

    def test_format(self, result):
        text = format_fig7(result, include_plots=False)
        assert "normalized energy" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(network="resnet20", array_sizes=(64,), group_counts=(1, 4), rank_divisors=(2, 8))

    def test_panel_contents(self, result):
        panel = result.panel("resnet20", 64)
        assert len(panel.quantized) == 4
        assert panel.ours_pareto

    def test_quantized_cycles_monotone_in_bits(self, result):
        panel = result.panel("resnet20", 64)
        by_bits = sorted(panel.quantized, key=lambda p: p.cycles)
        accuracies = [p.accuracy for p in by_bits]
        assert accuracies == sorted(accuracies)

    def test_speedup_over_quantization(self, result):
        assert quantization_speedup(result.panel("resnet20", 64)) > 1.0

    def test_format(self, result):
        assert "Fig. 8" in format_fig8(result, include_plots=False)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(panels=(("resnet20", 64),), group_counts=(1, 4), rank_divisors=(2, 8, 16))

    def test_panel_contents(self, result):
        panel = result.panel("resnet20", 64)
        assert panel.ours and panel.traditional

    def test_iso_accuracy_speedup(self, result):
        summary = iso_accuracy_speedup(result.panel("resnet20", 64))
        assert summary["ours"] is not None and summary["traditional"] is not None
        assert summary["speedup"] is not None and summary["speedup"] > 1.0

    def test_ours_pareto_dominates_traditional_somewhere(self, result):
        panel = result.panel("resnet20", 64)
        best_ours = min(p.cycles for p in panel.ours)
        best_traditional = min(p.cycles for p in panel.traditional)
        assert best_ours < best_traditional

    def test_format(self, result):
        assert "Fig. 9" in format_fig9(result, include_plots=False)
