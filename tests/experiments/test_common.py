"""Tests for the shared experiment helpers (cycle / energy totals, workloads).

Only the ResNet-20 workload is used here: the WRN16-4 accuracy-proxy
calibration is comparatively expensive and is exercised by the benchmark
harness instead.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    NetworkWorkload,
    baseline_cycles,
    baseline_energy,
    lowrank_network_cycles,
    lowrank_network_energy,
    pairs_network_cycles,
    pattern_network_cycles,
    pattern_network_energy,
    quantized_network_cycles,
)
from repro.mapping.geometry import ArrayDims


@pytest.fixture(scope="module")
def workload() -> NetworkWorkload:
    return NetworkWorkload("resnet20")


@pytest.fixture(scope="module")
def array() -> ArrayDims:
    return ArrayDims.square(64)


class TestWorkload:
    def test_layer_split(self, workload):
        assert len(workload.all_layers) == 21
        assert len(workload.compressible) == 18
        assert len(workload.fixed) == 3
        assert workload.baseline_accuracy == pytest.approx(91.6)

    def test_fixed_plus_compressible_covers_all(self, workload):
        names = {g.name for g in workload.fixed} | {g.name for g in workload.compressible}
        assert names == {g.name for g in workload.all_layers}


class TestCycleTotals:
    def test_baseline_in_expected_band(self, workload, array):
        """ResNet-20 im2col on a 64×64 array lands in the paper's tens-of-thousands band."""
        total = baseline_cycles(workload, array)
        assert 10_000 < total < 100_000

    def test_baseline_decreases_with_array_size(self, workload):
        sizes = [baseline_cycles(workload, ArrayDims.square(s)) for s in (32, 64, 128)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_proposed_method_beats_baseline(self, workload, array):
        ours = lowrank_network_cycles(workload, array, rank_divisor=8, groups=4, use_sdk=True)
        assert ours < baseline_cycles(workload, array)

    def test_sdk_beats_plain_factors_at_same_config(self, workload, array):
        with_sdk = lowrank_network_cycles(workload, array, 8, 4, use_sdk=True)
        without_sdk = lowrank_network_cycles(workload, array, 8, 4, use_sdk=False)
        assert with_sdk <= without_sdk

    def test_lower_rank_fewer_cycles(self, workload, array):
        fast = lowrank_network_cycles(workload, array, rank_divisor=16, groups=1, use_sdk=True)
        slow = lowrank_network_cycles(workload, array, rank_divisor=2, groups=1, use_sdk=True)
        assert fast <= slow

    def test_pattern_pruning_scales_with_entries(self, workload, array):
        light = pattern_network_cycles(workload, array, entries=8)
        heavy = pattern_network_cycles(workload, array, entries=2)
        assert heavy <= light <= baseline_cycles(workload, array)

    def test_pairs_not_worse_than_pattern_at_high_entries(self, workload, array):
        pairs = pairs_network_cycles(workload, array, entries=6)
        assert pairs <= baseline_cycles(workload, array)

    def test_quantized_cycles_scale_with_bits(self, workload, array):
        base = baseline_cycles(workload, array)
        assert quantized_network_cycles(workload, array, 4) == base
        assert quantized_network_cycles(workload, array, 2) == pytest.approx(base / 2, abs=1)
        with pytest.raises(ValueError):
            quantized_network_cycles(workload, array, 0)


class TestEnergyTotals:
    def test_fig7_network_ordering(self, workload, array):
        """Ours < pattern pruning < im2col at the paper's Fig. 7 operating points."""
        im2col = baseline_energy(workload, array)
        pattern = pattern_network_energy(workload, array, entries=6)
        ours = lowrank_network_energy(workload, array, rank_divisor=8, groups=4)
        assert ours < pattern < im2col

    def test_energy_positive(self, workload, array):
        assert baseline_energy(workload, array) > 0
