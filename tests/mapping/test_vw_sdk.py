"""Tests for the VW-SDK parallel-window search."""

from __future__ import annotations


from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.mapping.im2col import Im2colMapping
from repro.mapping.sdk import ParallelWindow, SDKMapping
from repro.mapping.vw_sdk import best_mapping, candidate_windows, search_parallel_window


class TestCandidateWindows:
    def test_excludes_kernel_sized_window(self, small_geometry, small_array):
        windows = candidate_windows(small_geometry, small_array, max_extra=3)
        assert ParallelWindow(3, 3) not in windows
        assert all(w.height >= 3 and w.width >= 3 for w in windows)

    def test_respects_max_extra(self, small_geometry, small_array):
        windows = candidate_windows(small_geometry, small_array, max_extra=2)
        assert all(w.height <= 5 and w.width <= 5 for w in windows)

    def test_bounded_by_input_size(self, small_array):
        geometry = ConvGeometry(2, 4, 3, 3, 4, 4, stride=1, padding=0)
        windows = candidate_windows(geometry, small_array, max_extra=10)
        assert all(w.height <= 4 and w.width <= 4 for w in windows)


class TestSearch:
    def test_never_worse_than_im2col(self, small_geometry, small_array):
        result = search_parallel_window(small_geometry, small_array)
        im2col = Im2colMapping(small_geometry).computing_cycles(small_array)
        assert result.cycles <= im2col

    def test_strided_layer_falls_back_to_im2col(self, small_array):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        result = search_parallel_window(geometry, small_array)
        assert not result.used_sdk
        assert result.window is None

    def test_wide_array_prefers_sdk(self, small_geometry):
        """With many idle columns the search should pick a PW larger than the kernel."""
        result = search_parallel_window(small_geometry, ArrayDims.square(128))
        assert result.used_sdk
        assert result.window is not None
        assert result.window.num_outputs(3, 3) > 1

    def test_custom_cost_function_is_used(self, small_geometry, small_array):
        calls = []

        def cost(mapping: SDKMapping, array: ArrayDims) -> int:
            calls.append(mapping.window)
            return 10**9  # make SDK always look terrible

        result = search_parallel_window(small_geometry, small_array, cycle_fn=cost)
        assert calls, "cost function was never called"
        assert not result.used_sdk

    def test_description(self, small_geometry, small_array):
        result = search_parallel_window(small_geometry, small_array)
        assert "cycles" in result.description


class TestBestMapping:
    def test_returns_mapping_object(self, small_geometry):
        mapping = best_mapping(small_geometry, ArrayDims.square(128))
        assert isinstance(mapping, (SDKMapping, Im2colMapping))

    def test_strided_returns_im2col(self, small_array):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        assert isinstance(best_mapping(geometry, small_array), Im2colMapping)
