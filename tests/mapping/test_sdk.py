"""Tests for the SDK mapping, including functional correctness of the operator.

The central test checks that the SDK-mapped matrix, applied to a flattened
parallel-window input, produces exactly the convolution outputs of the sliding
windows contained in that PW — i.e. the padding-matrix formulation of Eq. (7/8)
implements the dataflow of Fig. 2b/d.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.mapping.sdk import ParallelWindow, SDKMapping, build_padding_matrix


def naive_conv_outputs(inputs: np.ndarray, weight: np.ndarray, padding: int) -> np.ndarray:
    """Stride-1 convolution outputs (C_out, out_h, out_w) for a single image."""
    c_in, h, w = inputs.shape
    c_out, _, kh, kw = weight.shape
    padded = np.pad(inputs, ((0, 0), (padding, padding), (padding, padding)))
    out_h = h + 2 * padding - kh + 1
    out_w = w + 2 * padding - kw + 1
    out = np.zeros((c_out, out_h, out_w))
    for oc in range(c_out):
        for i in range(out_h):
            for j in range(out_w):
                out[oc, i, j] = np.sum(padded[:, i : i + kh, j : j + kw] * weight[oc])
    return out


class TestParallelWindow:
    def test_num_outputs(self):
        window = ParallelWindow(4, 4)
        assert window.num_outputs(3, 3) == 4
        assert window.output_grid(3, 3) == (2, 2)

    def test_window_smaller_than_kernel_raises(self):
        with pytest.raises(ValueError):
            ParallelWindow(2, 2).num_outputs(3, 3)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            ParallelWindow(0, 4)

    def test_str(self):
        assert str(ParallelWindow(4, 5)) == "4x5"


class TestPaddingMatrix:
    def test_shape_and_binary(self, small_geometry):
        window = ParallelWindow(4, 4)
        padding = build_padding_matrix(small_geometry, window, 0)
        b = small_geometry.in_channels * 16
        assert padding.shape == (b, small_geometry.n)
        assert set(np.unique(padding)).issubset({0.0, 1.0})

    def test_each_kernel_element_maps_to_one_input(self, small_geometry):
        window = ParallelWindow(4, 5)
        padding = build_padding_matrix(small_geometry, window, 2)
        # Every column (kernel element) selects exactly one PW input.
        np.testing.assert_allclose(padding.sum(axis=0), np.ones(small_geometry.n))

    def test_shift_index_out_of_range(self, small_geometry):
        with pytest.raises(ValueError):
            build_padding_matrix(small_geometry, ParallelWindow(4, 4), 4)

    def test_different_shifts_select_different_inputs(self, small_geometry):
        window = ParallelWindow(4, 4)
        p0 = build_padding_matrix(small_geometry, window, 0)
        p3 = build_padding_matrix(small_geometry, window, 3)
        assert not np.array_equal(p0, p3)


class TestSDKMappingDimensions:
    def test_mapped_dimensions(self, small_geometry):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        assert mapping.num_parallel_outputs == 4
        assert mapping.flattened_window_size == 4 * 16
        assert mapping.mapped_rows == 64
        assert mapping.mapped_cols == 4 * small_geometry.m

    def test_window_positions_cover_output(self, small_geometry):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        # 8x8 output covered by 2x2 output tiles -> 4x4 = 16 PW positions.
        assert mapping.window_positions == 16

    def test_strided_geometry_rejected(self):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        with pytest.raises(ValueError):
            SDKMapping(geometry, ParallelWindow(4, 4))

    def test_structural_sparsity_increases_with_window(self, small_geometry):
        small = SDKMapping(small_geometry, ParallelWindow(4, 4)).structural_sparsity()
        large = SDKMapping(small_geometry, ParallelWindow(6, 6)).structural_sparsity()
        assert 0 <= small < large < 1

    def test_apply_rejects_wrong_columns(self, small_geometry, rng):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        with pytest.raises(ValueError):
            mapping.apply(rng.standard_normal((8, 10)))

    def test_cycles_vs_im2col_on_wide_array(self, small_geometry):
        """SDK uses idle columns: with enough columns it needs fewer cycles than im2col."""
        from repro.mapping.im2col import Im2colMapping

        array = ArrayDims.square(128)
        sdk = SDKMapping(small_geometry, ParallelWindow(4, 4))
        im2col = Im2colMapping(small_geometry)
        assert sdk.computing_cycles(array) < im2col.computing_cycles(array)


class TestSDKFunctionalCorrectness:
    @pytest.mark.parametrize("window_shape", [(4, 4), (4, 5), (5, 5), (3, 4)])
    def test_sdk_matrix_computes_parallel_conv_outputs(self, window_shape, rng):
        """SDK(W) · (flattened PW input) equals the N sliding-window conv outputs."""
        geometry = ConvGeometry(3, 5, 3, 3, 10, 10, stride=1, padding=1, name="sdk-check")
        window = ParallelWindow(*window_shape)
        mapping = SDKMapping(geometry, window)
        weight = rng.standard_normal((geometry.out_channels, geometry.in_channels, 3, 3))
        inputs = rng.standard_normal((geometry.in_channels, geometry.input_h, geometry.input_w))

        conv = naive_conv_outputs(inputs, weight, geometry.padding)
        padded = np.pad(inputs, ((0, 0), (geometry.padding, geometry.padding), (geometry.padding, geometry.padding)))

        sdk_matrix = mapping.mapped_matrix(weight)
        nh, nw = window.output_grid(3, 3)
        top, left = 2, 1  # an arbitrary PW position inside the padded input
        x = mapping.window_input_vector(padded, top, left)
        outputs = sdk_matrix @ x  # (N * m,)

        for shift in range(mapping.num_parallel_outputs):
            dy, dx = divmod(shift, nw)
            expected = conv[:, top + dy, left + dx]
            got = outputs[shift * geometry.m : (shift + 1) * geometry.m]
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_sdk_operator_linear_in_matrix(self, small_geometry, rng):
        """SDK(aA + bB) == a·SDK(A) + b·SDK(B) — linearity used by Theorem 2."""
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        a = rng.standard_normal((small_geometry.m, small_geometry.n))
        b = rng.standard_normal((small_geometry.m, small_geometry.n))
        lhs = mapping.apply(2.0 * a - 3.0 * b)
        rhs = 2.0 * mapping.apply(a) - 3.0 * mapping.apply(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_mapped_matrix_accepts_4d_kernel(self, small_geometry, rng):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        weight = rng.standard_normal((small_geometry.m, small_geometry.in_channels, 3, 3))
        from_4d = mapping.mapped_matrix(weight)
        from_2d = mapping.mapped_matrix(weight.reshape(small_geometry.m, small_geometry.n))
        np.testing.assert_allclose(from_4d, from_2d)

    def test_padding_matrices_cached(self, small_geometry):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        first = mapping.padding_matrices()
        second = mapping.padding_matrices()
        assert first is second

    def test_window_vector_out_of_bounds_raises(self, small_geometry, rng):
        mapping = SDKMapping(small_geometry, ParallelWindow(4, 4))
        padded = rng.standard_normal((4, 10, 10))
        with pytest.raises(ValueError):
            mapping.window_input_vector(padded, 8, 8)
