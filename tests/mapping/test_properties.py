"""Property-based invariants of the mapping and cycle models.

These hypothesis tests encode the facts every experiment implicitly relies on:
bigger arrays never need more cycles, the VW-SDK search never loses to im2col,
cycle counts are consistent between the mapping objects and the cycle-model
functions, and utilization stays within physical bounds — for arbitrary layer
geometries, not just the catalogued networks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.cycles import (
    im2col_cycles,
    lowrank_cycles,
    pattern_pruning_cycles,
    sdk_cycles,
    tiles_for_block_diagonal,
    tiles_for_matrix,
)
from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.mapping.im2col import Im2colMapping
from repro.mapping.sdk import ParallelWindow, SDKMapping
from repro.mapping.utilization import im2col_utilization, sdk_utilization


@st.composite
def geometries(draw):
    """Random stride-1 convolution geometries with CIFAR-like extents."""
    in_channels = draw(st.integers(min_value=1, max_value=64))
    out_channels = draw(st.integers(min_value=1, max_value=128))
    kernel = draw(st.sampled_from([1, 3, 5]))
    input_size = draw(st.integers(min_value=kernel, max_value=32))
    padding = draw(st.integers(min_value=0, max_value=kernel // 2))
    return ConvGeometry(
        in_channels=in_channels,
        out_channels=out_channels,
        kernel_h=kernel,
        kernel_w=kernel,
        input_h=input_size,
        input_w=input_size,
        stride=1,
        padding=padding,
        name="prop",
    )


@st.composite
def arrays(draw):
    size = draw(st.sampled_from([16, 32, 64, 128, 256]))
    return ArrayDims.square(size)


class TestCycleModelInvariants:
    @settings(max_examples=60, deadline=None)
    @given(geometries())
    def test_larger_arrays_never_need_more_cycles(self, geometry):
        cycles = [im2col_cycles(geometry, ArrayDims.square(s)).cycles for s in (32, 64, 128, 256)]
        assert all(cycles[i] >= cycles[i + 1] for i in range(len(cycles) - 1))

    @settings(max_examples=60, deadline=None)
    @given(geometries(), arrays())
    def test_sdk_never_worse_than_im2col(self, geometry, array):
        assert sdk_cycles(geometry, array).cycles <= im2col_cycles(geometry, array).cycles

    @settings(max_examples=40, deadline=None)
    @given(geometries(), arrays(), st.integers(min_value=1, max_value=16), st.sampled_from([1, 2, 4]))
    def test_lowrank_sdk_never_worse_than_im2col_factors(self, geometry, array, rank, groups):
        with_sdk = lowrank_cycles(geometry, array, rank=rank, groups=groups, use_sdk=True).cycles
        without = lowrank_cycles(geometry, array, rank=rank, groups=groups, use_sdk=False).cycles
        assert with_sdk <= without

    @settings(max_examples=40, deadline=None)
    @given(geometries(), arrays(), st.sampled_from([1, 2, 4]))
    def test_lowrank_cycles_monotone_in_rank(self, geometry, array, groups):
        previous = 0
        for rank in (1, 2, 4, 8):
            current = lowrank_cycles(geometry, array, rank=rank, groups=groups, use_sdk=False).cycles
            assert current >= previous
            previous = current

    @settings(max_examples=60, deadline=None)
    @given(geometries(), arrays())
    def test_im2col_cycles_match_mapping_object(self, geometry, array):
        assert im2col_cycles(geometry, array).cycles == Im2colMapping(geometry).computing_cycles(array)

    @settings(max_examples=40, deadline=None)
    @given(geometries(), arrays(), st.integers(min_value=1, max_value=9))
    def test_pattern_pruning_never_worse_than_dense(self, geometry, array, entries):
        entries = min(entries, geometry.kernel_h * geometry.kernel_w)
        pruned = pattern_pruning_cycles(geometry, array, entries=entries).cycles
        assert pruned <= im2col_cycles(geometry, array).cycles

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        arrays(),
    )
    def test_block_diagonal_tiles_bounded_by_dense_tiling(self, blocks, rows, cols, array):
        from repro.mapping.geometry import ceil_div

        block_diag = tiles_for_block_diagonal(blocks, rows, cols, array)
        dense = tiles_for_matrix(blocks * rows, blocks * cols, array)
        # An unaligned block can straddle one extra tile per dimension.
        per_block_upper = blocks * (ceil_div(rows, array.rows) + 1) * (
            ceil_div(cols, array.logical_cols) + 1
        )
        assert 0 < block_diag <= dense
        assert block_diag <= per_block_upper


class TestUtilizationInvariants:
    @settings(max_examples=60, deadline=None)
    @given(geometries(), arrays())
    def test_im2col_utilization_bounds(self, geometry, array):
        report = im2col_utilization(geometry, array)
        assert 0 < report.utilization <= 1.0 + 1e-12
        assert 0 < report.row_utilization <= 1.0 + 1e-12
        assert 0 < report.col_utilization <= 1.0 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(geometries(), arrays(), st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
    def test_sdk_utilization_bounds(self, geometry, array, extra_h, extra_w):
        if geometry.kernel_h == 1 and extra_h == 0 and extra_w == 0:
            return
        window = ParallelWindow(geometry.kernel_h + extra_h, geometry.kernel_w + extra_w)
        report = sdk_utilization(geometry, array, window)
        assert 0 < report.utilization <= 1.0 + 1e-12


class TestSDKStructuralInvariants:
    @settings(max_examples=30, deadline=None)
    @given(geometries(), st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
    def test_outputs_per_cycle_times_positions_covers_output_map(self, geometry, extra_h, extra_w):
        window = ParallelWindow(geometry.kernel_h + extra_h, geometry.kernel_w + extra_w)
        mapping = SDKMapping(geometry, window)
        covered = mapping.outputs_per_cycle * mapping.window_positions
        assert covered >= geometry.num_windows

    @settings(max_examples=30, deadline=None)
    @given(geometries(), st.integers(min_value=1, max_value=3))
    def test_mapped_columns_scale_with_parallel_outputs(self, geometry, extra):
        window = ParallelWindow(geometry.kernel_h + extra, geometry.kernel_w + extra)
        mapping = SDKMapping(geometry, window)
        assert mapping.mapped_cols == mapping.num_parallel_outputs * geometry.m
        assert mapping.mapped_rows == geometry.in_channels * window.height * window.width
