"""Tests for the im2col mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.mapping.im2col import Im2colMapping, im2col_weight_matrix, unroll_kernel


class TestUnrollKernel:
    def test_shape(self, rng):
        weight = rng.standard_normal((8, 4, 3, 3))
        assert unroll_kernel(weight).shape == (8, 36)

    def test_row_is_vectorized_output_channel(self, rng):
        weight = rng.standard_normal((2, 3, 3, 3))
        matrix = unroll_kernel(weight)
        np.testing.assert_allclose(matrix[1], weight[1].reshape(-1))

    def test_alias(self, rng):
        weight = rng.standard_normal((2, 2, 3, 3))
        np.testing.assert_allclose(im2col_weight_matrix(weight), unroll_kernel(weight))

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            unroll_kernel(rng.standard_normal((4, 9)))


class TestIm2colMapping:
    def test_mapped_dimensions(self, small_geometry):
        mapping = Im2colMapping(small_geometry)
        assert mapping.mapped_rows == small_geometry.n
        assert mapping.mapped_cols == small_geometry.m
        assert mapping.outputs_per_cycle == 1
        assert mapping.window_positions == small_geometry.num_windows

    def test_array_tiles(self, small_geometry, small_array):
        mapping = Im2colMapping(small_geometry)
        ar, ac = mapping.array_tiles(small_array)
        assert ar == 2  # 36 rows over a 32-row array
        assert ac == 1
        assert mapping.num_arrays(small_array) == 2

    def test_computing_cycles(self, small_geometry, small_array):
        mapping = Im2colMapping(small_geometry)
        assert mapping.computing_cycles(small_array) == 2 * 64

    def test_utilization(self, small_geometry, small_array):
        mapping = Im2colMapping(small_geometry)
        util = mapping.utilization(small_array)
        assert util == pytest.approx((36 * 8) / (2 * 32 * 1 * 32))
        assert 0 < util <= 1

    def test_utilization_improves_with_matching_array(self, small_geometry):
        mapping = Im2colMapping(small_geometry)
        small = mapping.utilization(ArrayDims.square(128))
        large = mapping.utilization(ArrayDims.square(32))
        assert large > small

    def test_physical_matrix_is_transposed(self, small_geometry, rng):
        weight = rng.standard_normal((8, 4, 3, 3))
        mapping = Im2colMapping(small_geometry)
        physical = mapping.physical_matrix(weight)
        assert physical.shape == (36, 8)
        np.testing.assert_allclose(physical, unroll_kernel(weight).T)

    def test_describe_mentions_cycles(self, small_geometry, small_array):
        text = Im2colMapping(small_geometry).describe(small_array)
        assert "cycles" in text

    def test_more_output_channels_use_more_columns(self):
        narrow = Im2colMapping(ConvGeometry(4, 8, 3, 3, 8, 8, padding=1))
        wide = Im2colMapping(ConvGeometry(4, 64, 3, 3, 8, 8, padding=1))
        assert wide.mapped_cols > narrow.mapped_cols
