"""Tests for the utilization metrics that motivate the paper's techniques."""

from __future__ import annotations

import pytest

from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.mapping.sdk import ParallelWindow
from repro.mapping.utilization import (
    im2col_utilization,
    lowrank_utilization,
    sdk_utilization,
)


class TestIm2colUtilization:
    def test_bounds(self, small_geometry, small_array):
        report = im2col_utilization(small_geometry, small_array)
        assert 0 < report.utilization <= 1
        assert 0 < report.row_utilization <= 1
        assert 0 < report.col_utilization <= 1

    def test_low_column_utilization_with_few_output_channels(self):
        """The paper's motivation: few output channels leave most columns idle."""
        geometry = ConvGeometry(16, 8, 3, 3, 16, 16, padding=1)
        report = im2col_utilization(geometry, ArrayDims.square(128))
        assert report.col_utilization < 0.1


class TestSdkUtilization:
    def test_sdk_improves_column_utilization(self, small_geometry):
        """SDK fills idle columns with duplicated kernels (Fig. 2)."""
        array = ArrayDims.square(128)
        baseline = im2col_utilization(small_geometry, array)
        sdk = sdk_utilization(small_geometry, array, ParallelWindow(5, 5))
        assert sdk.col_utilization > baseline.col_utilization

    def test_used_cells_account_for_duplicates(self, small_geometry, small_array):
        window = ParallelWindow(4, 4)
        report = sdk_utilization(small_geometry, small_array, window)
        n_par = window.num_outputs(3, 3)
        assert report.used_cells == n_par * small_geometry.m * small_geometry.n


class TestLowRankUtilization:
    def test_im2col_factors_have_low_column_utilization(self, small_geometry):
        """Fig. 4b: the thin factors under-use the array columns."""
        array = ArrayDims.square(128)
        report = lowrank_utilization(small_geometry, array, rank=2, groups=1, use_sdk=False)
        baseline = im2col_utilization(small_geometry, array)
        assert report.col_utilization < baseline.col_utilization

    def test_sdk_factors_improve_column_utilization(self, small_geometry):
        """Fig. 5b: SDK-mapping the factors recovers column utilization."""
        array = ArrayDims.square(128)
        plain = lowrank_utilization(small_geometry, array, rank=2, groups=2, use_sdk=False)
        sdk = lowrank_utilization(
            small_geometry, array, rank=2, groups=2, use_sdk=True, window=ParallelWindow(5, 5)
        )
        assert sdk.col_utilization > plain.col_utilization

    def test_sdk_requires_window(self, small_geometry, small_array):
        with pytest.raises(ValueError):
            lowrank_utilization(small_geometry, small_array, rank=2, groups=1, use_sdk=True)

    def test_method_labels(self, small_geometry, small_array):
        report = lowrank_utilization(small_geometry, small_array, rank=2, groups=4, use_sdk=False)
        assert "g=4" in report.method

    def test_zero_allocated_guard(self):
        from repro.mapping.utilization import UtilizationReport

        report = UtilizationReport(method="x", used_cells=0, allocated_cells=0, row_utilization=0, col_utilization=0)
        assert report.utilization == 0.0
