"""Tests for ConvGeometry / ArrayDims shape arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.geometry import ArrayDims, ConvGeometry, ceil_div, standard_array_sizes
from repro.nn.modules import Conv2d


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expected", [(10, 5, 2), (11, 5, 3), (1, 5, 1), (0, 5, 0)])
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_non_positive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestConvGeometry:
    def test_im2col_dimensions(self, small_geometry):
        assert small_geometry.m == 8
        assert small_geometry.n == 4 * 3 * 3

    def test_output_size_with_padding(self, small_geometry):
        assert small_geometry.output_h == 8
        assert small_geometry.output_w == 8
        assert small_geometry.num_windows == 64

    def test_output_size_strided(self):
        geometry = ConvGeometry(3, 8, 3, 3, 32, 32, stride=2, padding=1)
        assert geometry.output_h == 16

    def test_macs_and_weight_count(self, small_geometry):
        assert small_geometry.weight_count == 8 * 36
        assert small_geometry.macs == 64 * 8 * 36

    def test_pointwise_detection(self):
        assert ConvGeometry(4, 8, 1, 1, 8, 8).is_pointwise
        assert not ConvGeometry(4, 8, 3, 3, 8, 8).is_pointwise

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            ConvGeometry(0, 8, 3, 3, 8, 8)
        with pytest.raises(ValueError):
            ConvGeometry(4, 8, 3, 3, 8, 8, stride=0)
        with pytest.raises(ValueError):
            ConvGeometry(4, 8, 5, 5, 3, 3)  # kernel larger than unpadded input

    def test_from_conv2d(self):
        conv = Conv2d(3, 16, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        geometry = ConvGeometry.from_conv2d(conv, (32, 32), name="layer")
        assert geometry.in_channels == 3
        assert geometry.out_channels == 16
        assert geometry.stride == 2
        assert geometry.padding == 1
        assert geometry.name == "layer"

    def test_scaled_copy(self, small_geometry):
        scaled = small_geometry.scaled(channel_scale=0.5, spatial_scale=0.5)
        assert scaled.in_channels == 2
        assert scaled.out_channels == 4
        assert scaled.input_h == 4

    def test_scaled_never_below_kernel(self, small_geometry):
        scaled = small_geometry.scaled(spatial_scale=0.01)
        assert scaled.input_h >= scaled.kernel_h

    def test_hashable_and_frozen(self, small_geometry):
        assert hash(small_geometry) == hash(
            ConvGeometry(4, 8, 3, 3, 8, 8, stride=1, padding=1, name="test-conv")
        )
        with pytest.raises(Exception):
            small_geometry.in_channels = 5  # type: ignore[misc]


class TestArrayDims:
    def test_cols_per_weight(self):
        assert ArrayDims(64, 64, weight_bits=4, cell_bits=4).cols_per_weight == 1
        assert ArrayDims(64, 64, weight_bits=4, cell_bits=1).cols_per_weight == 4
        assert ArrayDims(64, 64, weight_bits=4, cell_bits=2).cols_per_weight == 2

    def test_logical_cols(self):
        assert ArrayDims(64, 64, weight_bits=4, cell_bits=2).logical_cols == 32

    def test_cells_and_str(self):
        array = ArrayDims.square(32)
        assert array.cells == 1024
        assert str(array) == "32x32"

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            ArrayDims(0, 64)
        with pytest.raises(ValueError):
            ArrayDims(64, 64, weight_bits=0)

    def test_standard_sizes(self):
        sizes = standard_array_sizes()
        assert [a.rows for a in sizes] == [32, 64, 128]
