"""Block-diagonal lowering of grouped/depthwise convolutions and stacked GEMMs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imc.tiles import TiledMatrix
from repro.mapping.cycles import tiles_for_matrix
from repro.mapping.geometry import (
    ArrayDims,
    AttentionProjectionGeometry,
    ConvGeometry,
    GroupedConvGeometry,
    layer_family,
)
from repro.mapping.grouped import (
    expand_grouped_kernel,
    extract_group_blocks,
    group_slices,
    grouped_im2col_cycles,
    grouped_utilization,
    grouped_weight_matrix,
    stack_attention_weights,
    tiles_for_grouped_conv,
)


@st.composite
def grouped_geometries(draw):
    """Random grouped-conv geometries, including the depthwise extreme."""
    groups = draw(st.sampled_from([1, 2, 4, 8, 16]))
    in_mult = draw(st.integers(min_value=1, max_value=4))
    out_mult = draw(st.integers(min_value=1, max_value=4))
    kernel = draw(st.sampled_from([1, 3]))
    input_size = draw(st.sampled_from([4, 8, 16]))
    return GroupedConvGeometry(
        in_channels=groups * in_mult,
        out_channels=groups * out_mult,
        kernel_h=kernel,
        kernel_w=kernel,
        input_h=input_size,
        input_w=input_size,
        stride=1,
        padding=kernel // 2,
        name="prop-grouped",
        groups=groups,
    )


def _grouped_geometry(groups: int = 4, channels: int = 16) -> GroupedConvGeometry:
    return GroupedConvGeometry(
        channels, channels, 3, 3, 8, 8, stride=1, padding=1, name="g", groups=groups
    )


class TestGeometry:
    def test_group_divisibility_enforced(self):
        with pytest.raises(ValueError):
            GroupedConvGeometry(6, 8, 3, 3, 8, 8, groups=4)
        with pytest.raises(ValueError):
            GroupedConvGeometry(8, 6, 3, 3, 8, 8, groups=4)

    def test_weight_count_counts_stored_blocks_only(self):
        geometry = _grouped_geometry(groups=4)
        assert geometry.weight_count == 4 * geometry.block_out_rows * geometry.block_in_cols
        assert geometry.dense_weight_count == geometry.m * geometry.n
        assert geometry.weight_count == geometry.dense_weight_count // 4

    def test_depthwise_detection(self):
        depthwise = GroupedConvGeometry(16, 16, 3, 3, 8, 8, padding=1, groups=16)
        assert depthwise.is_depthwise
        assert not _grouped_geometry(groups=4).is_depthwise
        assert layer_family(depthwise) == "depthwise"
        assert layer_family(_grouped_geometry(groups=4)) == "grouped"
        assert layer_family(_grouped_geometry(groups=1)) == "conv"

    def test_attention_geometry_is_pointwise_gemm(self):
        geometry = AttentionProjectionGeometry.gemm(64, 64, 32, projections=3, name="qkv")
        assert (geometry.m, geometry.n) == (192, 64)
        assert geometry.num_windows == 32
        assert geometry.d_model == 64
        assert geometry.d_out == 64
        assert geometry.seq_len == 32
        assert layer_family(geometry) == "attention"
        assert layer_family(ConvGeometry(4, 8, 3, 3, 8, 8, padding=1)) == "conv"

    def test_attention_rejects_uneven_projection_split(self):
        with pytest.raises(ValueError):
            AttentionProjectionGeometry(64, 100, 1, 1, input_h=1, input_w=8, projections=3)

    def test_scaled_preserves_groups(self):
        geometry = _grouped_geometry(groups=4)
        scaled = geometry.scaled(0.5)
        assert isinstance(scaled, GroupedConvGeometry)
        assert scaled.groups == 4
        assert scaled.in_channels % 4 == 0


class TestLowering:
    def test_expand_matches_per_group_placement(self, rng):
        geometry = _grouped_geometry(groups=4)
        kernel = rng.standard_normal(
            (geometry.out_channels, geometry.group_in_channels, 3, 3)
        )
        matrix = expand_grouped_kernel(kernel, geometry)
        assert matrix.shape == (geometry.m, geometry.n)
        for g, (rows, cols) in enumerate(group_slices(geometry)):
            block = kernel[
                g * geometry.group_out_channels : (g + 1) * geometry.group_out_channels
            ].reshape(geometry.block_out_rows, geometry.block_in_cols)
            np.testing.assert_array_equal(matrix[rows, cols], block)
        # Everything off the diagonal blocks is a structural zero.
        mask = np.ones_like(matrix, dtype=bool)
        for rows, cols in group_slices(geometry):
            mask[rows, cols] = False
        assert not matrix[mask].any()

    def test_expand_rejects_wrong_kernel_shape(self, rng):
        geometry = _grouped_geometry(groups=4)
        with pytest.raises(ValueError):
            expand_grouped_kernel(rng.standard_normal((3, 3, 3, 3)), geometry)

    def test_block_diagonal_matmul_matches_per_group_oracle(self, rng):
        """The keras-cv GroupConv2D semantics: slice, convolve, concatenate."""
        geometry = _grouped_geometry(groups=4)
        blocks = [
            rng.standard_normal((geometry.block_out_rows, geometry.block_in_cols))
            for _ in range(geometry.groups)
        ]
        matrix = grouped_weight_matrix(blocks, geometry)
        columns = rng.standard_normal((6, geometry.n))
        per_group = np.concatenate(
            [
                columns[:, cols] @ block.T
                for block, (_, cols) in zip(blocks, group_slices(geometry))
            ],
            axis=1,
        )
        np.testing.assert_allclose(columns @ matrix.T, per_group, atol=1e-12)

    def test_stack_attention_weights_validates(self, rng):
        stacked = stack_attention_weights([rng.standard_normal((8, 16)) for _ in range(3)])
        assert stacked.shape == (24, 16)
        with pytest.raises(ValueError):
            stack_attention_weights([])
        with pytest.raises(ValueError):
            stack_attention_weights(
                [rng.standard_normal((8, 16)), rng.standard_normal((8, 12))]
            )

    @settings(max_examples=40, deadline=None)
    @given(grouped_geometries(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_block_roundtrip_is_exact(self, geometry, seed):
        rng = np.random.default_rng(seed)
        blocks = [
            rng.standard_normal((geometry.block_out_rows, geometry.block_in_cols))
            for _ in range(geometry.groups)
        ]
        recovered = extract_group_blocks(grouped_weight_matrix(blocks, geometry), geometry)
        assert len(recovered) == geometry.groups
        for block, back in zip(blocks, recovered):
            np.testing.assert_array_equal(block, back)


class TestTileCounts:
    @settings(max_examples=40, deadline=None)
    @given(grouped_geometries(), st.sampled_from([16, 32, 64]))
    def test_closed_form_matches_allocated_tiles(self, geometry, array_size):
        """tiles_for_grouped_conv predicts the tile layer's allocation exactly."""
        array = ArrayDims.square(array_size)
        rng = np.random.default_rng(geometry.groups)
        kernel = np.asarray(
            rng.standard_normal(
                (geometry.out_channels, geometry.group_in_channels,
                 geometry.kernel_h, geometry.kernel_w)
            )
        )
        # Structural zeros must survive programming; ensure blocks are non-zero.
        kernel += np.sign(kernel) + (kernel == 0)
        tiled = TiledMatrix(matrix=expand_grouped_kernel(kernel, geometry), array=array)
        assert tiled.num_allocated_tiles == tiles_for_grouped_conv(geometry, array)

    @settings(max_examples=40, deadline=None)
    @given(grouped_geometries(), st.sampled_from([16, 32, 64]))
    def test_block_diagonal_never_beats_dense_bound(self, geometry, array_size):
        array = ArrayDims.square(array_size)
        grouped = tiles_for_grouped_conv(geometry, array)
        dense = tiles_for_matrix(geometry.m, geometry.n, array)
        assert 1 <= grouped <= dense

    def test_depthwise_savings_and_utilization(self):
        """The experiment's punchline: fewer tiles, nearly idle cells."""
        geometry = GroupedConvGeometry(128, 128, 3, 3, 16, 16, padding=1, groups=128)
        array = ArrayDims.square(64)
        assert tiles_for_grouped_conv(geometry, array) == 18
        assert tiles_for_matrix(geometry.m, geometry.n, array) == 36
        report = grouped_utilization(geometry, array)
        assert report.used_cells == geometry.weight_count == 128 * 9
        assert report.allocated_cells == 18 * array.rows * array.logical_cols
        assert report.used_cells / report.allocated_cells < 0.02

    def test_cycles_scale_with_allocated_tiles(self):
        geometry = _grouped_geometry(groups=4)
        array = ArrayDims.square(32)
        cycles = grouped_im2col_cycles(geometry, array)
        tiles = tiles_for_grouped_conv(geometry, array)
        assert cycles.arrays == tiles
        assert cycles.cycles == tiles * geometry.num_windows
        assert cycles.mapped_rows == geometry.n
        assert cycles.mapped_cols == geometry.m
