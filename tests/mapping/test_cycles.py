"""Tests for the AR/AC computing-cycle model."""

from __future__ import annotations

import pytest

from repro.mapping.cycles import (
    aggregate,
    im2col_cycles,
    lowrank_cycles,
    pairs_cycles,
    pattern_pruning_cycles,
    sdk_cycles,
    select_lowrank_window,
    select_sdk_window,
    tiles_for_block_diagonal,
    tiles_for_matrix,
)
from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.mapping.im2col import Im2colMapping
from repro.mapping.sdk import ParallelWindow


class TestTilingPrimitives:
    def test_tiles_for_matrix(self, small_array):
        assert tiles_for_matrix(32, 32, small_array) == 1
        assert tiles_for_matrix(33, 32, small_array) == 2
        assert tiles_for_matrix(64, 65, small_array) == 2 * 3
        assert tiles_for_matrix(0, 10, small_array) == 0

    def test_block_diagonal_fits_single_tile(self, small_array):
        # 4 blocks of 8x8 along the diagonal of a 32x32 region: exactly one tile.
        assert tiles_for_block_diagonal(4, 8, 8, small_array) == 1

    def test_block_diagonal_skips_zero_tiles(self, small_array):
        # 2 blocks of 32x32: the two off-diagonal tiles are never allocated.
        assert tiles_for_block_diagonal(2, 32, 32, small_array) == 2
        assert tiles_for_matrix(64, 64, small_array) == 4

    def test_block_diagonal_straddling_tiles(self, small_array):
        # 3 blocks of 20 rows x 20 cols: blocks straddle tile boundaries.
        tiles = tiles_for_block_diagonal(3, 20, 20, small_array)
        assert 3 <= tiles <= 9

    def test_block_diagonal_empty(self, small_array):
        assert tiles_for_block_diagonal(0, 8, 8, small_array) == 0


class TestIm2colCycles:
    def test_matches_mapping_object(self, small_geometry, small_array):
        entry = im2col_cycles(small_geometry, small_array)
        mapping = Im2colMapping(small_geometry)
        assert entry.cycles == mapping.computing_cycles(small_array)
        assert entry.arrays == mapping.num_arrays(small_array)
        assert entry.method == "im2col"

    def test_larger_array_fewer_cycles(self, small_geometry):
        small = im2col_cycles(small_geometry, ArrayDims.square(32)).cycles
        large = im2col_cycles(small_geometry, ArrayDims.square(128)).cycles
        assert large <= small


class TestSdkCycles:
    def test_never_worse_than_im2col(self, small_geometry, small_array):
        assert sdk_cycles(small_geometry, small_array).cycles <= im2col_cycles(small_geometry, small_array).cycles

    def test_strided_layer_uses_im2col(self, small_array):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        entry = sdk_cycles(geometry, small_array)
        assert entry.cycles == im2col_cycles(geometry, small_array).cycles
        assert "im2col" in entry.details

    def test_explicit_window(self, small_geometry, small_array):
        entry = sdk_cycles(small_geometry, small_array, window=ParallelWindow(4, 4))
        assert "PW 4x4" in entry.details


class TestLowRankCycles:
    def test_invalid_rank_or_groups(self, small_geometry, small_array):
        with pytest.raises(ValueError):
            lowrank_cycles(small_geometry, small_array, rank=0)
        with pytest.raises(ValueError):
            lowrank_cycles(small_geometry, small_array, rank=2, groups=0)

    def test_im2col_factor_cycles_formula(self, small_geometry, small_array):
        entry = lowrank_cycles(small_geometry, small_array, rank=2, groups=1, use_sdk=False)
        stage1 = tiles_for_matrix(small_geometry.n, 2, small_array)
        stage2 = tiles_for_matrix(2, small_geometry.m, small_array)
        assert entry.cycles == (stage1 + stage2) * small_geometry.num_windows

    def test_sdk_variant_never_worse_than_im2col_variant(self, small_geometry):
        array = ArrayDims.square(128)
        with_sdk = lowrank_cycles(small_geometry, array, rank=2, groups=2, use_sdk=True).cycles
        without = lowrank_cycles(small_geometry, array, rank=2, groups=2, use_sdk=False).cycles
        assert with_sdk <= without

    def test_strided_layer_falls_back(self, small_array):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        entry = lowrank_cycles(geometry, small_array, rank=2, groups=2, use_sdk=True)
        assert "strided" in entry.details or "im2col" in entry.details

    def test_higher_rank_needs_more_cycles_or_equal(self, small_geometry, small_array):
        low = lowrank_cycles(small_geometry, small_array, rank=1, groups=1, use_sdk=False).cycles
        high = lowrank_cycles(small_geometry, small_array, rank=8, groups=1, use_sdk=False).cycles
        assert high >= low

    def test_explicit_window_used(self, small_geometry, small_array):
        entry = lowrank_cycles(
            small_geometry, small_array, rank=2, groups=1, use_sdk=True, window=ParallelWindow(4, 4)
        )
        assert "PW 4x4" in entry.details

    def test_method_label_mentions_configuration(self, small_geometry, small_array):
        entry = lowrank_cycles(small_geometry, small_array, rank=2, groups=4, use_sdk=False)
        assert "g=4" in entry.method and "k=2" in entry.method


class TestPruningCycles:
    def test_pattern_pruning_reduces_rows(self, small_geometry, small_array):
        full = pattern_pruning_cycles(small_geometry, small_array, entries=9)
        pruned = pattern_pruning_cycles(small_geometry, small_array, entries=3)
        assert pruned.mapped_rows < full.mapped_rows
        assert pruned.cycles <= full.cycles

    def test_without_zero_skipping_no_benefit(self, small_geometry, small_array):
        pruned = pattern_pruning_cycles(small_geometry, small_array, entries=3, zero_skipping=False)
        assert pruned.cycles == im2col_cycles(small_geometry, small_array).cycles

    def test_invalid_entries(self, small_geometry, small_array):
        with pytest.raises(ValueError):
            pattern_pruning_cycles(small_geometry, small_array, entries=0)
        with pytest.raises(ValueError):
            pattern_pruning_cycles(small_geometry, small_array, entries=10)

    def test_pairs_reduces_rows_vs_sdk(self, small_geometry):
        array = ArrayDims.square(128)
        pairs = pairs_cycles(small_geometry, array, entries=4)
        dense_sdk = sdk_cycles(small_geometry, array)
        assert pairs.mapped_rows <= dense_sdk.mapped_rows

    def test_pairs_strided_falls_back_to_pattern(self, small_array):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        entry = pairs_cycles(geometry, small_array, entries=4)
        assert entry.method.startswith("pattern")


class TestWindowSelectors:
    def test_select_sdk_window_none_for_strided(self, small_array):
        geometry = ConvGeometry(4, 8, 3, 3, 8, 8, stride=2, padding=1)
        assert select_sdk_window(geometry, small_array) is None

    def test_select_lowrank_window_consistent_with_cycles(self, small_geometry):
        array = ArrayDims.square(128)
        window = select_lowrank_window(small_geometry, array, rank=2, groups=1)
        entry = lowrank_cycles(small_geometry, array, rank=2, groups=1, use_sdk=True)
        if window is None:
            assert "im2col" in entry.details
        else:
            assert f"PW {window}" in entry.details

    def test_selectors_cached(self, small_geometry, small_array):
        first = select_sdk_window(small_geometry, small_array)
        second = select_sdk_window(small_geometry, small_array)
        assert first is second or first == second


class TestAggregation:
    def test_network_totals(self, small_geometry, small_array):
        entries = [im2col_cycles(small_geometry, small_array) for _ in range(3)]
        report = aggregate("im2col", entries)
        assert report.total_cycles == 3 * entries[0].cycles
        assert report.total_arrays == 3 * entries[0].arrays
        assert len(report.per_layer()) == 1  # same layer name collapses in the dict

    def test_speedup_over(self, small_geometry, small_array):
        baseline = aggregate("im2col", [im2col_cycles(small_geometry, small_array)])
        compressed = aggregate(
            "lowrank", [lowrank_cycles(small_geometry, small_array, rank=1, groups=1, use_sdk=False)]
        )
        assert compressed.speedup_over(baseline) == pytest.approx(
            baseline.total_cycles / compressed.total_cycles
        )

    def test_layer_cycles_scaled(self, small_geometry, small_array):
        entry = im2col_cycles(small_geometry, small_array)
        assert entry.scaled(0.5).cycles == round(entry.cycles * 0.5)
