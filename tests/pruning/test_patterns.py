"""Tests for the kernel pattern library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning.patterns import (
    Pattern,
    all_patterns,
    assign_patterns,
    build_pattern_library,
    pattern_from_mask,
    score_patterns,
)


class TestPattern:
    def test_entries_and_sparsity(self):
        pattern = Pattern(3, 3, frozenset({(0, 0), (1, 1), (2, 2)}))
        assert pattern.entries == 3
        assert pattern.sparsity == pytest.approx(6 / 9)

    def test_mask(self):
        pattern = Pattern(3, 3, frozenset({(0, 1)}))
        mask = pattern.mask()
        assert mask[0, 1] == 1 and mask.sum() == 1

    def test_apply_zeroes_pruned_positions(self, rng):
        kernel = rng.standard_normal((3, 3))
        pattern = Pattern(3, 3, frozenset({(1, 1)}))
        pruned = pattern.apply(kernel)
        assert pruned[1, 1] == kernel[1, 1]
        assert np.count_nonzero(pruned) <= 1

    def test_apply_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            Pattern(3, 3, frozenset({(0, 0)})).apply(rng.standard_normal((2, 2)))

    def test_preserved_magnitude(self):
        kernel = np.arange(9.0).reshape(3, 3)
        pattern = Pattern(3, 3, frozenset({(2, 2)}))
        assert pattern.preserved_magnitude(kernel) == pytest.approx(64.0)

    def test_invalid_patterns(self):
        with pytest.raises(ValueError):
            Pattern(3, 3, frozenset())
        with pytest.raises(ValueError):
            Pattern(3, 3, frozenset({(3, 0)}))
        with pytest.raises(ValueError):
            Pattern(0, 3, frozenset({(0, 0)}))

    def test_pattern_from_mask_roundtrip(self):
        pattern = Pattern(3, 3, frozenset({(0, 0), (2, 1)}))
        recovered = pattern_from_mask(pattern.mask())
        assert recovered == pattern

    def test_pattern_from_mask_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pattern_from_mask(np.ones(4))


class TestAllPatterns:
    def test_count_is_binomial(self):
        assert len(all_patterns(3, 3, 4)) == 126  # C(9, 4)
        assert len(all_patterns(3, 3, 1)) == 9
        assert len(all_patterns(2, 2, 4)) == 1

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            all_patterns(3, 3, 0)
        with pytest.raises(ValueError):
            all_patterns(3, 3, 10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=9))
    def test_every_pattern_has_requested_entries(self, entries):
        assert all(p.entries == entries for p in all_patterns(3, 3, entries))


class TestLibraryConstruction:
    def test_scores_shape(self, rng):
        weight = rng.standard_normal((4, 3, 3, 3))
        patterns = all_patterns(3, 3, 4)
        scores = score_patterns(weight, patterns)
        assert scores.shape == (len(patterns),)
        assert np.all(scores >= 0)

    def test_score_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            score_patterns(rng.standard_normal((3, 3)), all_patterns(3, 3, 4))

    def test_library_size_respected(self, rng):
        weight = rng.standard_normal((4, 3, 3, 3))
        library = build_pattern_library(weight, entries=4, library_size=6)
        assert len(library) == 6
        assert all(p.entries == 4 for p in library)

    def test_library_contains_best_scoring_pattern(self, rng):
        weight = rng.standard_normal((4, 3, 3, 3))
        candidates = all_patterns(3, 3, 4)
        scores = score_patterns(weight, candidates)
        best = candidates[int(np.argmax(scores))]
        library = build_pattern_library(weight, entries=4, library_size=8)
        assert best in library

    def test_library_size_validation(self, rng):
        with pytest.raises(ValueError):
            build_pattern_library(rng.standard_normal((2, 2, 3, 3)), entries=4, library_size=0)


class TestAssignment:
    def test_assignment_shape(self, rng):
        weight = rng.standard_normal((4, 5, 3, 3))
        library = build_pattern_library(weight, entries=4, library_size=4)
        assignment = assign_patterns(weight, library)
        assert len(assignment) == 4
        assert len(assignment[0]) == 5
        assert all(p in library for row in assignment for p in row)

    def test_assignment_picks_magnitude_maximizing_pattern(self):
        """A kernel whose energy sits in one corner picks the pattern covering it."""
        weight = np.zeros((1, 1, 3, 3))
        weight[0, 0, 0, 0] = 10.0
        corner = Pattern(3, 3, frozenset({(0, 0)}))
        center = Pattern(3, 3, frozenset({(1, 1)}))
        assignment = assign_patterns(weight, [center, corner])
        assert assignment[0][0] == corner

    def test_empty_library_rejected(self, rng):
        with pytest.raises(ValueError):
            assign_patterns(rng.standard_normal((2, 2, 3, 3)), [])
