"""Tests for magnitude and column (channel) pruning baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import SimpleCNN
from repro.nn.tensor import Tensor
from repro.pruning.structured import (
    ColumnPruningSpec,
    MagnitudePruningSpec,
    apply_column_pruning,
    apply_magnitude_pruning,
    channel_importance,
    column_mask,
    magnitude_mask,
    sparsity,
)


class TestMasks:
    def test_sparsity_helper(self):
        assert sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == pytest.approx(0.5)
        assert sparsity(np.array([])) == 0.0

    def test_magnitude_mask_density(self, rng):
        weight = rng.standard_normal((8, 4, 3, 3))
        mask = magnitude_mask(weight, 0.75)
        assert sparsity(mask) == pytest.approx(0.75, abs=0.02)

    def test_magnitude_mask_keeps_largest(self, rng):
        weight = rng.standard_normal((4, 4, 3, 3))
        mask = magnitude_mask(weight, 0.5)
        kept = np.abs(weight[mask == 1])
        pruned = np.abs(weight[mask == 0])
        assert kept.min() >= pruned.max() - 1e-12

    def test_magnitude_mask_zero_sparsity(self, rng):
        weight = rng.standard_normal((2, 2, 3, 3))
        assert np.all(magnitude_mask(weight, 0.0) == 1)

    def test_magnitude_mask_invalid(self, rng):
        with pytest.raises(ValueError):
            magnitude_mask(rng.standard_normal((2, 2)), 1.0)

    def test_channel_importance_shape(self, rng):
        weight = rng.standard_normal((8, 5, 3, 3))
        assert channel_importance(weight).shape == (5,)

    def test_channel_importance_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            channel_importance(rng.standard_normal((8, 5)))

    def test_column_mask_prunes_whole_channels(self, rng):
        weight = rng.standard_normal((8, 8, 3, 3))
        mask = column_mask(weight, 0.5)
        per_channel = mask.sum(axis=(0, 2, 3))
        assert set(np.unique(per_channel)).issubset({0.0, 8 * 9})
        assert (per_channel == 0).sum() == 4

    def test_column_mask_prunes_least_important(self, rng):
        weight = rng.standard_normal((4, 4, 3, 3))
        weight[:, 0] *= 0.001  # channel 0 is clearly the least important
        mask = column_mask(weight, 0.25)
        assert np.all(mask[:, 0] == 0)

    def test_column_mask_invalid(self, rng):
        with pytest.raises(ValueError):
            column_mask(rng.standard_normal((4, 4, 3, 3)), -0.1)


class TestModelLevel:
    def test_magnitude_pruning_applies(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_magnitude_pruning(model, MagnitudePruningSpec(target_sparsity=0.5))
        assert report.records
        assert report.mean_sparsity == pytest.approx(0.5, abs=0.05)

    def test_column_pruning_applies_and_model_runs(self, rng):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_column_pruning(model, ColumnPruningSpec(target_sparsity=0.25))
        assert report.records
        out = model(Tensor(rng.standard_normal((1, 3, 12, 12))))
        assert out.shape == (1, 5)

    def test_column_pruning_reports_pruned_rows(self):
        model = SimpleCNN(num_classes=5, widths=(8, 8, 8), seed=0)
        report = apply_column_pruning(model, ColumnPruningSpec(target_sparsity=0.5))
        for record in report.records:
            assert record.pruned_rows > 0
            assert record.pruned_rows % 9 == 0  # whole channels (kh*kw rows) pruned

    def test_first_conv_skipped(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_magnitude_pruning(model, MagnitudePruningSpec(target_sparsity=0.3))
        assert len(report.skipped) == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MagnitudePruningSpec(target_sparsity=1.0)
        with pytest.raises(ValueError):
            ColumnPruningSpec(target_sparsity=-0.5)

    def test_describe(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_magnitude_pruning(model)
        assert "pruned" in report.describe()
