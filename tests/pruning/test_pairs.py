"""Tests for PAIRS row-aligned pruning."""

from __future__ import annotations

import pytest

from repro.mapping.sdk import ParallelWindow
from repro.nn.models import SimpleCNN
from repro.pruning.pairs import (
    PairsSpec,
    apply_pairs_pruning,
    select_row_aligned_pattern,
    skippable_sdk_rows,
)
from repro.pruning.patterns import Pattern, all_patterns


class TestSkippableRows:
    def test_full_kernel_skips_only_untouched_rows(self, small_geometry):
        window = ParallelWindow(4, 4)
        full = Pattern(3, 3, frozenset((i, j) for i in range(3) for j in range(3)))
        skippable, total = skippable_sdk_rows(small_geometry, window, full)
        assert total == small_geometry.in_channels * 16
        assert skippable == 0  # a 4x4 PW is fully covered by shifted 3x3 kernels

    def test_single_entry_pattern_skips_many_rows(self, small_geometry):
        window = ParallelWindow(4, 4)
        single = Pattern(3, 3, frozenset({(1, 1)}))
        skippable, total = skippable_sdk_rows(small_geometry, window, single)
        # Only a 2x2 region of each channel's PW is read -> 12 of 16 rows skip.
        assert skippable == small_geometry.in_channels * 12
        assert 0 < skippable < total

    def test_fewer_entries_never_skip_fewer_rows(self, small_geometry):
        window = ParallelWindow(4, 4)
        best_by_entries = []
        for entries in (1, 3, 6, 9):
            best = max(
                skippable_sdk_rows(small_geometry, window, p)[0] for p in all_patterns(3, 3, entries)
            )
            best_by_entries.append(best)
        assert all(best_by_entries[i] >= best_by_entries[i + 1] for i in range(len(best_by_entries) - 1))


class TestSelectRowAlignedPattern:
    def test_selected_pattern_has_requested_entries(self, small_geometry):
        window = ParallelWindow(4, 4)
        pattern = select_row_aligned_pattern(small_geometry, window, entries=4)
        assert pattern.entries == 4

    def test_selected_pattern_maximizes_skipping(self, small_geometry):
        window = ParallelWindow(4, 4)
        pattern = select_row_aligned_pattern(small_geometry, window, entries=4)
        best = max(skippable_sdk_rows(small_geometry, window, p)[0] for p in all_patterns(3, 3, 4))
        assert skippable_sdk_rows(small_geometry, window, pattern)[0] == best

    def test_magnitude_breaks_ties(self, small_geometry, rng):
        window = ParallelWindow(4, 4)
        weight = rng.standard_normal((small_geometry.m, small_geometry.in_channels, 3, 3))
        pattern = select_row_aligned_pattern(small_geometry, window, entries=4, weight=weight)
        assert pattern.entries == 4


class TestApplyPairs:
    def test_report_contains_results(self, small_array):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_pairs_pruning(model, small_array, input_hw=(12, 12), spec=PairsSpec(entries=4))
        assert report.results
        assert all(0 <= r.row_skip_fraction <= 1 for r in report.results)
        assert 0 <= report.mean_row_skip_fraction <= 1

    def test_model_runs_after_pairs(self, small_array, rng):
        from repro.nn.tensor import Tensor

        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        apply_pairs_pruning(model, small_array, input_hw=(12, 12), spec=PairsSpec(entries=4))
        out = model(Tensor(rng.standard_normal((1, 3, 12, 12))))
        assert out.shape == (1, 5)

    def test_effective_rows_consistent(self, small_array):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_pairs_pruning(model, small_array, input_hw=(12, 12), spec=PairsSpec(entries=4))
        for result in report.results:
            assert result.effective_rows == result.total_rows - result.skippable_rows

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PairsSpec(entries=0)

    def test_describe(self, small_array):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_pairs_pruning(model, small_array, input_hw=(12, 12))
        assert "PAIRS" in report.describe()
