"""Tests for model-level pattern pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import SimpleCNN
from repro.nn.modules import Conv2d
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.pruning.pattern_pruning import (
    PatternPrunedConv2d,
    PatternPruningSpec,
    apply_pattern_pruning,
    prune_conv_pattern,
)


class TestPatternPrunedConv2d:
    def test_mask_applied_to_weights(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        mask = np.zeros_like(conv.weight.data)
        mask[:, :, 1, 1] = 1.0
        pruned = PatternPrunedConv2d(conv, mask)
        assert np.count_nonzero(pruned.effective_weight()) <= 3 * 4

    def test_forward_shape_matches_original(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        mask = np.ones_like(conv.weight.data)
        pruned = PatternPrunedConv2d(conv, mask)
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        assert pruned(x).shape == conv(x).shape

    def test_full_mask_is_identity(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        pruned = PatternPrunedConv2d(conv, np.ones_like(conv.weight.data))
        x = Tensor(rng.standard_normal((1, 3, 5, 5)))
        np.testing.assert_allclose(pruned(x).data, conv(x).data, atol=1e-12)

    def test_sparsity_property(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        mask = np.zeros_like(conv.weight.data)
        mask[:, :, 0, 0] = 1.0
        assert PatternPrunedConv2d(conv, mask).sparsity == pytest.approx(8 / 9)

    def test_kept_rows(self, rng):
        conv = Conv2d(2, 4, 3, rng=rng)
        mask = np.zeros_like(conv.weight.data)
        mask[:, :, 1, :] = 1.0  # keep only the middle kernel row
        pruned = PatternPrunedConv2d(conv, mask)
        assert pruned.kept_rows() == 2 * 3

    def test_mask_shape_mismatch_raises(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            PatternPrunedConv2d(conv, np.ones((4, 3, 2, 2)))

    def test_pruned_positions_stay_zero_after_training(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        mask = np.zeros_like(conv.weight.data)
        mask[:, :, 1, 1] = 1.0
        pruned = PatternPrunedConv2d(conv, mask)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        optimizer = SGD(pruned.parameters(), lr=0.1)
        for _ in range(5):
            optimizer.zero_grad()
            (pruned(x) ** 2).mean().backward()
            optimizer.step()
        assert np.all(pruned.effective_weight()[mask == 0] == 0)


class TestPruneConv:
    def test_sparsity_matches_entries(self, rng):
        conv = Conv2d(4, 8, 3, rng=rng)
        pruned, record = prune_conv_pattern(conv, entries=4)
        assert record.sparsity == pytest.approx(1 - 4 / 9)
        assert pruned.sparsity == pytest.approx(1 - 4 / 9)

    def test_preserved_energy_increases_with_entries(self, rng):
        conv = Conv2d(4, 8, 3, rng=rng)
        _, low = prune_conv_pattern(conv, entries=2)
        _, high = prune_conv_pattern(conv, entries=8)
        assert high.preserved_energy >= low.preserved_energy
        assert 0 < low.preserved_energy <= 1

    def test_entries_clamped_to_kernel_size(self, rng):
        conv = Conv2d(2, 2, 2, rng=rng)  # 2x2 kernel: at most 4 entries
        pruned, record = prune_conv_pattern(conv, entries=9)
        assert record.entries == 4
        assert pruned.sparsity == pytest.approx(0.0)


class TestApplyPatternPruning:
    def test_replaces_eligible_layers(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_pattern_pruning(model, PatternPruningSpec(entries=4))
        pruned_layers = [m for m in model.modules() if isinstance(m, PatternPrunedConv2d)]
        assert len(pruned_layers) == len(report.records) == 2
        assert report.skipped  # first conv skipped

    def test_model_runs_after_pruning(self, rng):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        apply_pattern_pruning(model, PatternPruningSpec(entries=4))
        out = model(Tensor(rng.standard_normal((2, 3, 12, 12))))
        assert out.shape == (2, 5)

    def test_mean_sparsity_reported(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_pattern_pruning(model, PatternPruningSpec(entries=3))
        assert report.mean_sparsity == pytest.approx(1 - 3 / 9)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PatternPruningSpec(entries=0)
        with pytest.raises(ValueError):
            PatternPruningSpec(library_size=0)

    def test_describe(self):
        model = SimpleCNN(num_classes=5, widths=(4, 8, 8), seed=0)
        report = apply_pattern_pruning(model, PatternPruningSpec(entries=4))
        assert "pattern pruning" in report.describe()

    def test_label(self):
        assert PatternPruningSpec(entries=6).label == "pattern(e=6)"
