"""Golden-value regression suite: every reproduced number vs. a committed snapshot.

``report_golden.json`` is a committed ``suite_to_json`` snapshot of the full
default experiment suite (Table I, Figs. 6–9, the robustness sweep).  This
test re-runs the suite and compares **every** number in the emitted document
against the snapshot within per-metric tolerances, so silent numeric drift
anywhere in the engine — a kernel change that shifts conductances, a cache
that stops being bit-transparent, a sweep that quietly loses points — fails
CI instead of shipping.

Tolerances are keyed by metric name: discrete quantities (cycles, tiles,
counts, configuration) must match exactly; analytically-derived floats
(energies, ratios) to ~1e-9; quantities that pass through LAPACK/BLAS (SVD
reconstruction errors, Monte-Carlo output errors, proxy accuracies) get a
small relative tolerance so a different BLAS build does not flap the suite.

Under a non-bit-identical execution backend (``REPRO_BACKEND=numpy32``) the
suite runs in **tolerance mode**: every float tolerance is widened by the
active precision policy's documented ``golden_scale`` (the float32 envelope —
see ENGINE.md, "Execution backends"); integer metrics stay exact.  The
bit-identical backends (``numpy64``, ``threaded``) keep the float64 envelope
unchanged, which is what the CI backend-parity matrix asserts.

Regenerate the snapshot after an *intentional* numeric change with::

    PYTHONPATH=src python -m repro report --json tests/golden/report_golden.json

and review the diff — every changed number should be explainable by the
change being shipped.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, List, Tuple

import pytest

from repro.backend import active_backend, using_backend
from repro.engine.cache import default_decomposition_cache
from repro.experiments.runner import run_all, suite_to_json
from repro.store import ExperimentStore

GOLDEN_PATH = Path(__file__).resolve().parent / "report_golden.json"

#: (key-substring, rtol, atol) — first match wins, checked in order.
#: Accuracies are interpolated from BLAS-derived errors, so their allowance
#: must absorb at least the drift the "error" tolerance itself admits
#: (a 1e-5 relative error shift moves proxy accuracy by up to ~1e-5 absolute).
TOLERANCES: Tuple[Tuple[str, float, float], ...] = (
    ("accuracy", 1e-5, 1e-4),
    ("error", 1e-5, 1e-9),
    ("energy", 1e-9, 1e-12),
    ("saving", 1e-6, 1e-9),
    ("speedup", 1e-6, 1e-9),
    ("ratio", 1e-6, 1e-9),
)
DEFAULT_RTOL, DEFAULT_ATOL = 1e-7, 1e-9

#: Derived formatted strings that re-render reproduced floats; their numeric
#: sources are compared field by field, so re-formatting is not re-checked.
SKIPPED_KEYS = frozenset({"headline"})


def _tolerance_for(path: str) -> Tuple[float, float]:
    # Tolerance mode: a non-bit-identical backend widens every float band by
    # its policy's documented golden_scale (1.0 for the float64 family).
    scale = active_backend().policy.golden_scale
    leaf = path.rsplit(".", 1)[-1]
    leaf = leaf.split("[", 1)[0]
    for substring, rtol, atol in TOLERANCES:
        if substring in leaf:
            return rtol * scale, atol * scale
    return DEFAULT_RTOL * scale, DEFAULT_ATOL * scale


def _compare(expected: Any, actual: Any, path: str, mismatches: List[str]) -> None:
    if isinstance(expected, dict) and isinstance(actual, dict):
        if set(expected) != set(actual):
            missing = sorted(set(expected) - set(actual))
            extra = sorted(set(actual) - set(expected))
            mismatches.append(f"{path}: keys differ (missing={missing}, extra={extra})")
            return
        for key in expected:
            if key in SKIPPED_KEYS:
                if not actual[key]:
                    mismatches.append(f"{path}.{key}: expected non-empty value")
                continue
            _compare(expected[key], actual[key], f"{path}.{key}", mismatches)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            mismatches.append(f"{path}: length {len(actual)} != golden {len(expected)}")
            return
        for index, (exp_item, act_item) in enumerate(zip(expected, actual)):
            _compare(exp_item, act_item, f"{path}[{index}]", mismatches)
        return
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            mismatches.append(f"{path}: {actual!r} != golden {expected!r}")
        return
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if isinstance(expected, int) and isinstance(actual, int):
            if expected != actual:
                mismatches.append(f"{path}: {actual} != golden {expected} (exact)")
            return
        rtol, atol = _tolerance_for(path)
        if not math.isclose(float(actual), float(expected), rel_tol=rtol, abs_tol=atol):
            mismatches.append(
                f"{path}: {actual!r} != golden {expected!r} (rtol={rtol}, atol={atol})"
            )
        return
    if expected != actual:
        mismatches.append(f"{path}: {actual!r} != golden {expected!r}")


@pytest.fixture(scope="module")
def experiment_store(tmp_path_factory):
    """A cold persistent store the golden run fills (and a warm pass re-reads)."""
    store = ExperimentStore(tmp_path_factory.mktemp("golden") / "store")
    yield store
    default_decomposition_cache.detach_store()


@pytest.fixture(scope="module")
def reproduced_document(experiment_store):
    # The cold run executes *through* the store layer, so the golden
    # comparison also certifies that persisting cells does not perturb a
    # single reproduced number.
    return suite_to_json(run_all(store=experiment_store))


@pytest.fixture(scope="module")
def warm_document(reproduced_document, experiment_store):
    """A second full run assembled purely from the store the cold run filled."""
    return suite_to_json(run_all(store=experiment_store))


class TestGoldenReport:
    def test_snapshot_exists(self):
        assert GOLDEN_PATH.exists(), (
            "missing golden snapshot; regenerate with "
            "`PYTHONPATH=src python -m repro report --json tests/golden/report_golden.json`"
        )

    def test_every_reproduced_number_matches_snapshot(self, reproduced_document):
        golden = json.loads(GOLDEN_PATH.read_text())
        mismatches: List[str] = []
        _compare(golden, reproduced_document, "$", mismatches)
        preview = "\n".join(mismatches[:40])
        assert not mismatches, (
            f"{len(mismatches)} reproduced values drifted from the golden snapshot "
            f"(first {min(40, len(mismatches))} shown):\n{preview}\n"
            "If the drift is intentional, regenerate the snapshot (see module docstring) "
            "and review the diff."
        )

    def test_warm_store_run_matches_snapshot(self, warm_document):
        """The golden contract holds when every cell is decoded, not computed."""
        golden = json.loads(GOLDEN_PATH.read_text())
        mismatches: List[str] = []
        _compare(golden, warm_document, "$", mismatches)
        assert not mismatches, (
            f"warm-store run drifted from the golden snapshot: {mismatches[:10]}"
        )

    def test_warm_store_run_is_byte_identical_to_cold(
        self, reproduced_document, warm_document
    ):
        cold = json.dumps(reproduced_document, indent=2, sort_keys=False)
        warm = json.dumps(warm_document, indent=2, sort_keys=False)
        assert warm == cold

    def test_snapshot_covers_all_experiments(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(golden["experiments"]) == {
            "table1", "fig6", "fig7", "fig8", "fig9", "robustness", "layer_families",
        }


class TestCompareHelper:
    """The tolerance walker itself must catch what it claims to catch.

    These meta-tests pin the float64 envelope explicitly: under a numpy32
    parity run the widened tolerance-mode bands would otherwise absorb the
    synthetic drift they inject.
    """

    def test_detects_numeric_drift(self):
        mismatches: List[str] = []
        with using_backend("numpy64"):
            _compare({"accuracy": 90.0}, {"accuracy": 90.5}, "$", mismatches)
        assert mismatches

    def test_tolerance_mode_widens_float_bands(self):
        """A drift the float64 envelope rejects passes under the float32 policy."""
        drift = {"accuracy": 90.0}, {"accuracy": 90.05}
        with using_backend("numpy64"):
            strict: List[str] = []
            _compare(*drift, "$", strict)
        with using_backend("numpy32"):
            scaled: List[str] = []
            _compare(*drift, "$", scaled)
        assert strict and not scaled

    def test_accepts_within_tolerance(self):
        mismatches: List[str] = []
        with using_backend("numpy64"):
            _compare({"accuracy": 90.0}, {"accuracy": 90.0 + 1e-8}, "$", mismatches)
        assert not mismatches

    def test_int_metrics_are_exact(self):
        mismatches: List[str] = []
        _compare({"cycles": 1000}, {"cycles": 1001}, "$", mismatches)
        assert mismatches

    def test_detects_missing_keys_and_short_lists(self):
        mismatches: List[str] = []
        _compare({"a": 1, "b": 2}, {"a": 1}, "$", mismatches)
        _compare([1, 2, 3], [1, 2], "$.list", mismatches)
        assert len(mismatches) == 2

    def test_bool_is_not_coerced_to_int(self):
        mismatches: List[str] = []
        _compare({"flag": True}, {"flag": 1}, "$", mismatches)
        assert mismatches
