"""Tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import DataLoader
from repro.data.synthetic import make_tiny_dataset
from repro.nn.models import TinyConvNet
from repro.nn.modules import Module
from repro.nn.tensor import Tensor
from repro.training.evaluate import confusion_matrix, evaluate_accuracy, evaluate_topk, predict_logits


class PerfectClassifier(Module):
    """Predicts the label encoded in the first pixel of each image."""

    def __init__(self, num_classes: int) -> None:
        super().__init__()
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        labels = np.round(x.data[:, 0, 0, 0]).astype(int) % self.num_classes
        logits = np.full((x.shape[0], self.num_classes), -10.0)
        logits[np.arange(x.shape[0]), labels] = 10.0
        return Tensor(logits)


def make_labelled_loader(num_classes: int = 4, samples: int = 32) -> DataLoader:
    dataset = make_tiny_dataset(num_samples=samples, num_classes=num_classes, image_size=4, seed=0)
    dataset.images[:, 0, 0, 0] = dataset.labels  # encode label into the first pixel
    return DataLoader(dataset, batch_size=8, shuffle=False)


class TestEvaluateAccuracy:
    def test_perfect_classifier_scores_one(self):
        loader = make_labelled_loader()
        assert evaluate_accuracy(PerfectClassifier(4), loader) == pytest.approx(1.0)

    def test_random_model_near_chance(self):
        dataset = make_tiny_dataset(num_samples=200, num_classes=4, image_size=8, seed=1)
        loader = DataLoader(dataset, batch_size=50, shuffle=False)
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        accuracy = evaluate_accuracy(model, loader)
        assert 0.0 <= accuracy <= 0.6

    def test_predict_logits_eval_mode(self):
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        model.train()
        logits = predict_logits(model, np.zeros((2, 3, 8, 8)))
        assert logits.shape == (2, 4)
        assert not model.training  # predict_logits switches to eval


class TestTopK:
    def test_topk_at_num_classes_is_one(self):
        dataset = make_tiny_dataset(num_samples=40, num_classes=4, image_size=8, seed=0)
        loader = DataLoader(dataset, batch_size=20, shuffle=False)
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        assert evaluate_topk(model, loader, k=4) == pytest.approx(1.0)

    def test_topk_at_least_top1(self):
        loader = make_labelled_loader()
        model = PerfectClassifier(4)
        top1 = evaluate_accuracy(model, loader)
        top2 = evaluate_topk(model, loader, k=2)
        assert top2 >= top1

    def test_invalid_k(self):
        loader = make_labelled_loader()
        with pytest.raises(ValueError):
            evaluate_topk(PerfectClassifier(4), loader, k=0)


class TestConfusionMatrix:
    def test_perfect_classifier_diagonal(self):
        loader = make_labelled_loader(num_classes=4, samples=40)
        matrix = confusion_matrix(PerfectClassifier(4), loader, num_classes=4)
        assert matrix.sum() == 40
        assert np.all(matrix == np.diag(np.diag(matrix)))

    def test_row_sums_equal_class_counts(self):
        dataset = make_tiny_dataset(num_samples=40, num_classes=4, image_size=8, seed=0)
        loader = DataLoader(dataset, batch_size=10, shuffle=False)
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        matrix = confusion_matrix(model, loader, num_classes=4)
        np.testing.assert_array_equal(matrix.sum(axis=1), np.bincount(dataset.labels, minlength=4))
