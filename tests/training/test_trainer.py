"""Tests for the training loop (including on compressed / quantized models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import DataLoader
from repro.data.synthetic import make_tiny_dataset
from repro.lowrank.compress import CompressionSpec, compress_model
from repro.nn.models import SimpleCNN, TinyConvNet
from repro.nn.optim import SGD, Adam, StepLR
from repro.training.trainer import Trainer


@pytest.fixture
def tiny_loaders():
    dataset = make_tiny_dataset(num_samples=120, num_classes=4, image_size=8, seed=0)
    train, test = dataset.split(0.8, seed=0)
    return (
        DataLoader(train, batch_size=24, shuffle=True, seed=0),
        DataLoader(test, batch_size=24, shuffle=False),
    )


class TestTrainer:
    def test_single_step_returns_metrics(self, tiny_loaders):
        train_loader, _ = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        images, labels = next(iter(train_loader))
        stats = trainer.train_step(images, labels)
        assert "loss" in stats and "accuracy" in stats
        assert stats["loss"] > 0
        assert 0 <= stats["accuracy"] <= 1

    def test_loss_decreases_over_training(self, tiny_loaders):
        train_loader, _ = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        history = trainer.fit(train_loader, epochs=4)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_accuracy_above_chance_after_training(self, tiny_loaders):
        train_loader, test_loader = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02))
        trainer.fit(train_loader, epochs=6, eval_loader=test_loader)
        assert trainer.history.best_eval_accuracy > 0.3  # chance is 0.25

    def test_history_records_learning_rate_and_time(self, tiny_loaders):
        train_loader, _ = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        optimizer = SGD(model.parameters(), lr=0.1)
        trainer = Trainer(model, optimizer, scheduler=StepLR(optimizer, step_size=1, gamma=0.5))
        history = trainer.fit(train_loader, epochs=2)
        assert history.epochs[0].learning_rate == pytest.approx(0.05)
        assert history.epochs[1].learning_rate == pytest.approx(0.025)
        assert all(e.seconds >= 0 for e in history.epochs)

    def test_grad_clipping_bounds_update(self, tiny_loaders):
        train_loader, _ = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), grad_clip=0.001)
        images, labels = next(iter(train_loader))
        trainer.train_step(images, labels)
        total = sum(float(np.sum(p.grad ** 2)) for p in model.parameters() if p.grad is not None)
        assert np.sqrt(total) <= 0.001 + 1e-9

    def test_invalid_epochs(self, tiny_loaders):
        train_loader, _ = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError):
            trainer.fit(train_loader, epochs=0)

    def test_history_helpers(self, tiny_loaders):
        train_loader, test_loader = tiny_loaders
        model = TinyConvNet(num_classes=4, in_channels=3, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        trainer.fit(train_loader, epochs=2, eval_loader=test_loader)
        as_dict = trainer.history.as_dict()
        assert len(as_dict["train_loss"]) == 2
        assert trainer.history.final_train_accuracy >= 0
        assert trainer.history.final_eval_accuracy is not None

    def test_compressed_model_trains(self, tiny_loaders):
        """A group low-rank compressed model goes through the same training loop."""
        train_loader, _ = tiny_loaders
        model = SimpleCNN(num_classes=4, widths=(8, 8, 16), seed=0)
        compress_model(model, CompressionSpec(rank_divisor=2, groups=2))
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        history = trainer.fit(train_loader, epochs=3)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
