"""Tests for the calibrated accuracy proxy (resnet20 only — the WRN16-4 proxy
is exercised by the benchmark harness to keep unit tests fast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.proxy import BASELINE_ACCURACY, TABLE1_ACCURACY, AccuracyProxy
from repro.training.seeds import EXPERIMENT_SEEDS, seed_everything, spawn_generator


@pytest.fixture(scope="module")
def proxy() -> AccuracyProxy:
    return AccuracyProxy(network="resnet20")


class TestLowRankProxy:
    def test_baseline(self, proxy):
        assert proxy.baseline_accuracy == BASELINE_ACCURACY["resnet20"]

    def test_error_decreases_with_rank(self, proxy):
        errors = [proxy.mean_relative_error(divisor, 1) for divisor in (16, 8, 4, 2)]
        assert all(errors[i] >= errors[i + 1] for i in range(len(errors) - 1))

    def test_error_decreases_with_groups(self, proxy):
        """Theorem 1 at proxy level: more groups, same rank divisor → smaller error."""
        errors = [proxy.mean_relative_error(8, groups) for groups in (1, 2, 4, 8)]
        assert all(errors[i] >= errors[i + 1] - 1e-12 for i in range(len(errors) - 1))

    def test_accuracy_increases_with_rank(self, proxy):
        accs = [proxy.lowrank_accuracy(divisor, 1) for divisor in (16, 8, 4, 2)]
        assert all(accs[i] <= accs[i + 1] + 1e-9 for i in range(len(accs) - 1))

    def test_accuracy_increases_with_groups(self, proxy):
        accs = [proxy.lowrank_accuracy(16, groups) for groups in (1, 2, 4, 8)]
        assert all(accs[i] <= accs[i + 1] + 1e-9 for i in range(len(accs) - 1))

    def test_accuracy_below_baseline(self, proxy):
        for groups in (1, 4):
            for divisor in (2, 8, 16):
                assert proxy.lowrank_accuracy(divisor, groups) <= proxy.baseline_accuracy

    def test_anchor_configurations_near_table1(self, proxy):
        """Every Table I anchor must be reproduced within a couple of percent."""
        for (groups, divisor), paper_value in TABLE1_ACCURACY["resnet20"].items():
            measured = proxy.lowrank_accuracy(divisor, groups)
            assert measured == pytest.approx(paper_value, abs=3.0)

    def test_from_error_extremes(self, proxy):
        assert proxy.lowrank_accuracy_from_error(0.0) == pytest.approx(proxy.baseline_accuracy)
        assert proxy.lowrank_accuracy_from_error(1.0) < 60.0

    def test_from_error_monotone(self, proxy):
        values = [proxy.lowrank_accuracy_from_error(e) for e in np.linspace(0, 1, 21)]
        assert all(values[i] >= values[i + 1] - 1e-9 for i in range(len(values) - 1))

    def test_error_cache_consistency(self, proxy):
        assert proxy.mean_relative_error(8, 4) == proxy.mean_relative_error(8, 4)


class TestBaselineProxies:
    def test_pattern_pruning_monotone_in_entries(self, proxy):
        accs = [proxy.pattern_pruning_accuracy(e) for e in range(1, 9)]
        assert all(accs[i] <= accs[i + 1] for i in range(len(accs) - 1))

    def test_pattern_pruning_clamps_entries(self, proxy):
        assert proxy.pattern_pruning_accuracy(0) == proxy.pattern_pruning_accuracy(1)
        assert proxy.pattern_pruning_accuracy(20) == proxy.pattern_pruning_accuracy(8)

    def test_pairs_at_least_patdnn(self, proxy):
        for entries in (1, 4, 8):
            assert proxy.pairs_accuracy(entries) >= proxy.pattern_pruning_accuracy(entries)
            assert proxy.pairs_accuracy(entries) <= proxy.baseline_accuracy

    def test_quantization_monotone_in_bits(self, proxy):
        accs = [proxy.quantization_accuracy(bits) for bits in (1, 2, 3, 4)]
        assert all(accs[i] <= accs[i + 1] for i in range(len(accs) - 1))

    def test_headline_accuracy_gap_shape(self, proxy):
        """The proposed method's low-cycle configs beat aggressive pruning by a wide margin."""
        ours_low_cost = proxy.lowrank_accuracy(16, 8)
        pruning_low_cost = proxy.pattern_pruning_accuracy(1)
        assert ours_low_cost - pruning_low_cost > 5.0

    def test_invalid_network(self):
        with pytest.raises(ValueError):
            AccuracyProxy(network="vgg16")

    def test_jitter_disabled_by_default(self, proxy):
        assert proxy.lowrank_accuracy(8, 4) == proxy.lowrank_accuracy(8, 4)

    def test_jitter_adds_noise(self):
        noisy = AccuracyProxy(network="resnet20", noise_std=0.5)
        values = {noisy.lowrank_accuracy(8, 4) for _ in range(5)}
        assert len(values) > 1


class TestSeeds:
    def test_seed_everything_reproducible(self):
        seed_everything(3)
        a = np.random.rand(5)
        seed_everything(3)
        b = np.random.rand(5)
        np.testing.assert_allclose(a, b)

    def test_spawn_generator_streams_independent(self):
        a = spawn_generator(0, stream=0).random(4)
        b = spawn_generator(0, stream=1).random(4)
        assert not np.allclose(a, b)

    def test_experiment_seeds_are_three(self):
        assert len(EXPERIMENT_SEEDS) == 3
