"""The docs-consistency gate (tools/check_docs.py) and its helper.

The CI job runs the script; this suite keeps it honest locally — the live
repo must pass, and the name matcher must actually detect an undocumented
registration rather than vacuously succeeding.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "tools" / "check_docs.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckDocs:
    def test_repo_docs_are_consistent(self):
        """The committed docs must cover every registered name."""
        completed = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr
        assert "docs-consistency OK" in completed.stdout

    def test_missing_names_detects_absent_name(self, tmp_path):
        document = tmp_path / "doc.md"
        document.write_text("mentions `table1` and layer_families here")
        module = _load_module()
        absent = module.missing_names(
            document, ["table1", "layer_families", "fig6"]
        )
        assert absent == ["fig6"]

    def test_missing_names_requires_word_boundaries(self, tmp_path):
        """A substring inside a longer identifier is not a mention."""
        document = tmp_path / "doc.md"
        document.write_text("only fig6_extended appears")
        module = _load_module()
        assert module.missing_names(document, ["fig6_extended"]) == []

    def test_gate_lists_what_is_missing(self, tmp_path, monkeypatch):
        """Pointing the gate at empty docs names every absent registration."""
        module = _load_module()
        for name in ("README.md", "ENGINE.md"):
            (tmp_path / name).write_text("empty")
        (tmp_path / "docs").mkdir()
        monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
        assert module.main() == 1
