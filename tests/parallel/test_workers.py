"""Process-parallel sweep execution: equivalence, accounting, crash recovery.

The headline contract: ``--workers N`` produces output byte-identical to
``--workers 1`` (the workers only *compute cells into the store*; assembly is
the ordinary warm path), resumes for free from a partially-warm store, and
survives worker death through lease expiry + work stealing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.cache import default_decomposition_cache
from repro.engine.sweep import run_experiments
from repro.experiments.runner import SUITE_EXPERIMENTS, run_all, suite_to_json
from repro.parallel import (
    WORKERS_ENV_VAR,
    WorkerStats,
    _scan_order,
    default_shard_count,
    format_worker_summary,
    plan_namespace,
    resolve_workers,
    run_cells_parallel,
    run_experiments_parallel,
)
from repro.store import ExperimentStore, LeaseBoard

RESTRICTED_OVERRIDES = {
    "fig6": {"array_sizes": (32,)},
    "robustness": {"trials": 2},
    "layer_families": {"trials": 2},
}


@pytest.fixture(autouse=True)
def detach_store_after():
    yield
    default_decomposition_cache.detach_store()


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers() == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert resolve_workers(2) == 2

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers() == 3

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    @pytest.mark.parametrize("count", [0, -2])
    def test_non_positive_rejected(self, count):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(count)


class TestPlanShape:
    def test_shard_count_oversubscribes_workers(self):
        assert default_shard_count(4) > 4
        assert default_shard_count(1) >= 1

    def test_scan_order_is_a_permutation_with_distinct_starts(self):
        orders = [_scan_order(8, worker) for worker in range(3)]
        for order in orders:
            assert sorted(order) == list(range(1, 9))
        assert len({order[0] for order in orders}) > 1

    def test_namespace_is_stable_for_identical_plans(self):
        a = plan_namespace(["table1"], {"table1": {"networks": ("resnet20",)}}, 8)
        b = plan_namespace(["table1"], {"table1": {"networks": ("resnet20",)}}, 8)
        assert a == b

    @pytest.mark.parametrize(
        "other",
        [
            (["table1"], {"table1": {"networks": ("wrn16_4",)}}, 8, None),
            (["fig7"], {}, 8, None),
            (["table1"], {"table1": {"networks": ("resnet20",)}}, 4, None),
            (["table1"], {"table1": {"networks": ("resnet20",)}}, 8, "numpy32"),
        ],
    )
    def test_namespace_distinguishes_plans(self, other):
        base = plan_namespace(["table1"], {"table1": {"networks": ("resnet20",)}}, 8)
        assert plan_namespace(*other) != base

    def test_namespace_accepts_non_canonical_override_values(self):
        """A pickled stand-in keeps e.g. a custom EnergyModel fingerprintable."""
        from repro.imc.energy import EnergyModel

        first = plan_namespace(["fig7"], {"fig7": {"model": EnergyModel()}}, 8)
        second = plan_namespace(["fig7"], {"fig7": {"model": EnergyModel()}}, 8)
        bare = plan_namespace(["fig7"], {}, 8)
        assert first == second, "identical models must resolve to one namespace"
        assert first != bare

    def test_worker_summary_lists_totals(self):
        stats = [
            WorkerStats(worker_id=0, shards=[1, 3], stolen=1, computed=5, resumed=2),
            WorkerStats(worker_id=1, shards=[2], computed=4),
        ]
        text = format_worker_summary(stats)
        assert "worker 0" in text and "stolen 1" in text
        assert "workers total: 3 shards, computed 9, resumed 2" in text


class TestGuards:
    def test_embedded_shard_override_rejected(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        with pytest.raises(ValueError, match="shard"):
            run_experiments_parallel(
                ["table1"], {"table1": {"shard": (1, 2)}}, store=store, workers=2
            )

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiments_parallel(["nope"], {}, workers=2)

    def test_run_experiments_ignores_workers_for_sharded_overrides(self, tmp_path, monkeypatch):
        """$REPRO_WORKERS must not re-partition an explicit --shard slice."""
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        store = ExperimentStore(tmp_path / "store")
        results = run_experiments(
            names=["fig7"],
            overrides={"fig7": {"store": store, "shard": (1, 2), "array_sizes": (32,)}},
        )
        # A ShardStats summary, not an assembled figure: the serial shard path ran.
        assert results["fig7"].shard == (1, 2)


@pytest.fixture(scope="module")
def serial_reference():
    """The restricted suite, serial and storeless — the byte-identity oracle."""
    suite = run_all(include_fig6_arrays=(32,), robustness_trials=2)
    return json.dumps(suite_to_json(suite))


@pytest.fixture(scope="module")
def parallel_cells(tmp_path_factory):
    """One two-worker cell-computation pass into a fresh store."""
    root = tmp_path_factory.mktemp("parallel") / "store"
    store = ExperimentStore(root)
    stats = run_cells_parallel(
        SUITE_EXPERIMENTS, RESTRICTED_OVERRIDES, store, workers=2, nshards=6
    )
    return store, stats


class TestParallelExecution:
    def test_every_cell_computed_exactly_once_cold(self, parallel_cells):
        store, stats = parallel_cells
        assert sum(len(stat.shards) for stat in stats) == 6
        assert sum(stat.computed for stat in stats) > 0
        assert sum(stat.resumed for stat in stats) == 0
        assert store.path_for("svd", "x").parent.parent.exists(), "SVDs must spill"

    def test_leases_are_purged_after_success(self, parallel_cells):
        store, _ = parallel_cells
        assert not list((store.root / "leases").glob("*"))

    def test_warm_assembly_is_byte_identical_to_serial(
        self, parallel_cells, serial_reference
    ):
        store, _ = parallel_cells
        results = run_experiments_parallel(
            SUITE_EXPERIMENTS, RESTRICTED_OVERRIDES, store=store, workers=2
        )
        suite = run_all(
            include_fig6_arrays=(32,), robustness_trials=2, store=store, workers=1
        )
        assert json.dumps(suite_to_json(suite)) == serial_reference
        assert set(results) == set(SUITE_EXPERIMENTS)

    def test_second_parallel_run_resumes_everything(self, parallel_cells):
        store, _ = parallel_cells
        stats = run_cells_parallel(
            SUITE_EXPERIMENTS, RESTRICTED_OVERRIDES, store, workers=2, nshards=6
        )
        assert sum(stat.computed for stat in stats) == 0
        assert sum(stat.resumed for stat in stats) > 0

    def test_ephemeral_store_run_matches_serial(self, serial_reference):
        suite = run_all(include_fig6_arrays=(32,), robustness_trials=2, workers=2)
        assert json.dumps(suite_to_json(suite)) == serial_reference


class TestBackendPinning:
    def test_cli_scoped_backend_reaches_the_workers(self, tmp_path, capsys):
        """`--backend numpy32 --workers 2` must compute cells under numpy32.

        The CLI installs its backend as an ambient using_backend scope and
        passes backend=None downstream; scopes do not cross process
        boundaries, so the executor pins the *active* backend name into the
        worker specs.  Regression: unpinned workers computed (and salted)
        every cell under the default backend, and the numpy32 assembly pass
        missed all of them.
        """
        from repro.cli import main

        store_root = tmp_path / "store"
        assert main([
            "--store", str(store_root), "--backend", "numpy32",
            "report", "--arrays", "32", "--trials", "2", "--workers", "2",
        ]) == 0
        capsys.readouterr()
        wrappers = [
            json.loads(path.read_text())
            for path in store_root.rglob("*.json")
            if "svd" not in str(path)
        ]
        assert wrappers, "the workers must have materialized grid cells"
        assert all(w["salt"].endswith("+float32") for w in wrappers), (
            "every cell must carry the numpy32 precision salt"
        )

    def test_env_workers_do_not_reject_an_explicit_shard(self, tmp_path, capsys, monkeypatch):
        """A fleet-wide $REPRO_WORKERS default must not break --shard K/N."""
        from repro.cli import main

        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert main([
            "--store", str(tmp_path / "store"),
            "report", "--arrays", "32", "--trials", "2", "--shard", "1/2",
        ]) == 0
        assert "shard 1/2" in capsys.readouterr().out

    def test_ephemeral_run_restores_the_callers_spill_store(self, tmp_path):
        """run_fig7(workers=2) without a store must not clobber an attached one."""
        from repro.experiments.fig7 import run_fig7

        mine = ExperimentStore(tmp_path / "mine")
        default_decomposition_cache.attach_store(mine)
        run_fig7(array_sizes=(32,), workers=2)
        assert default_decomposition_cache._store is mine

    def test_caller_store_run_restores_the_callers_spill_store(self, tmp_path):
        """A caller-supplied store must not clobber an attached spill target.

        Regression: the restoration in run_experiments_parallel's teardown
        only ran on the ephemeral-store path, so a run *with* a store left
        that store attached to the process-wide decomposition cache —
        silently redirecting every later spill of the caller's session.
        """
        mine = ExperimentStore(tmp_path / "mine")
        shared = ExperimentStore(tmp_path / "shared")
        default_decomposition_cache.attach_store(mine)
        run_experiments_parallel(
            ["fig7"], {"fig7": {"array_sizes": (32,)}}, store=shared, workers=2
        )
        assert default_decomposition_cache._store is mine


class TestCrashRecovery:
    def test_expired_lease_of_a_dead_worker_is_stolen_and_completed(self, tmp_path):
        """A lease with no live owner must not wedge the sweep.

        Simulates a worker that died mid-shard: its lease exists, is expired,
        and its shard has no completion marker.  A fresh single-worker run
        must steal the shard, compute the missing cells, and finish.
        """
        store = ExperimentStore(tmp_path / "store")
        names = ["fig7"]
        overrides = {"fig7": {"array_sizes": (32, 64)}}
        nshards = 4
        # run_cells_parallel pins the unresolved backend to the active one
        # before deriving the namespace; mirror that here.
        namespace = plan_namespace(names, overrides, nshards, "numpy64")
        board = LeaseBoard(store.root, namespace, ttl=30.0, clock=lambda: 0.0)
        for shard in range(1, nshards + 1):
            assert board.claim(shard, "dead-worker")  # all expired on the real clock

        stats = run_cells_parallel(
            names, overrides, store, workers=1, nshards=nshards, lease_ttl=30.0
        )
        assert sum(stat.stolen for stat in stats) == nshards
        assert sum(len(stat.shards) for stat in stats) == nshards

    def test_killed_worker_run_recovers_end_to_end(self, tmp_path):
        """SIGKILL one worker of a live CLI run; the report must still emerge.

        Either the surviving worker steals the dead worker's shards after the
        (shortened) lease TTL and the first invocation completes, or the
        first invocation fails and the rerun resumes from the completion
        markers + store — both paths must end in a report byte-identical to
        the serial reference.
        """
        repo_root = Path(__file__).resolve().parents[2]
        env = {
            **os.environ,
            "PYTHONPATH": str(repo_root / "src"),
            "REPRO_LEASE_TTL": "3",
        }
        env.pop(WORKERS_ENV_VAR, None)
        base = [
            sys.executable, "-m", "repro", "--store", str(tmp_path / "store"),
            "report", "--arrays", "32", "--trials", "2",
        ]
        reference = tmp_path / "reference.json"
        subprocess.run(
            [*base, "--json", str(reference), "--workers", "1"],
            check=True, env=env, cwd=repo_root, capture_output=True,
        )
        subprocess.run(
            ["rm", "-rf", str(tmp_path / "store")], check=True
        )

        target = tmp_path / "parallel.json"
        victim_run = subprocess.Popen(
            [*base, "--json", str(target), "--workers", "2"],
            env=env, cwd=repo_root,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        victim = self._wait_for_spawned_worker(victim_run.pid, timeout=60.0)
        if victim is not None:
            os.kill(victim, signal.SIGKILL)
        first_rc = victim_run.wait(timeout=300)

        if first_rc != 0 or not target.exists():
            rerun = subprocess.run(
                [*base, "--json", str(target), "--workers", "2"],
                env=env, cwd=repo_root, capture_output=True,
            )
            assert rerun.returncode == 0, rerun.stderr.decode()
        assert target.read_bytes() == reference.read_bytes()

    @staticmethod
    def _wait_for_spawned_worker(parent_pid: int, timeout: float):
        """The pid of a spawned worker child of ``parent_pid``, or None.

        Identified by the multiprocessing spawn bootstrap in the command line
        (the resource tracker is explicitly excluded — killing it would not
        exercise lease recovery).
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for entry in Path("/proc").iterdir():
                if not entry.name.isdigit():
                    continue
                try:
                    stat = (entry / "stat").read_text()
                    ppid = int(stat.rsplit(")", 1)[1].split()[1])
                    if ppid != parent_pid:
                        continue
                    cmdline = (entry / "cmdline").read_bytes().replace(b"\0", b" ")
                except (OSError, ValueError, IndexError):
                    continue
                if b"spawn_main" in cmdline and b"resource_tracker" not in cmdline:
                    return int(entry.name)
            time.sleep(0.05)
        return None

    def test_interrupt_teardown_expires_abandoned_leases(self, tmp_path, monkeypatch):
        """Ctrl-C in the parent must not leave live leases stalling a rerun.

        Regression: the parent terminated its workers on KeyboardInterrupt
        without touching their leases, so an immediate rerun had to sit out
        up to a full TTL before it could steal the orphaned shards.  The
        teardown now fast-expires whatever the dead workers held.
        """
        store = ExperimentStore(tmp_path / "store")
        ttl = 300.0
        held = []

        def interrupt(processes, results):
            # What a worker holds at the moment the operator hits Ctrl-C.
            namespace = next((store.root / "leases").iterdir()).name
            board = LeaseBoard(store.root, namespace, ttl=ttl)
            for shard in range(1, 5):
                if board.claim(shard, "doomed-worker"):
                    held.append((namespace, shard))
                    break
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.parallel._collect_worker_results", interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_cells_parallel(
                ["fig7"],
                {"fig7": {"array_sizes": (32,)}},
                store,
                workers=1,
                nshards=4,
                lease_ttl=ttl,
            )
        assert held, "the interrupt hook must have claimed a shard"
        namespace, shard = held[0]
        board = LeaseBoard(store.root, namespace, ttl=ttl)
        now = time.time()
        for _, info in board.live_leases():
            assert info is None or info.expired(now), (
                "no lease may outlive the interrupt teardown"
            )
        # The owner and token survive expiry (fencing still applies), but a
        # rerun's worker claims the shard immediately instead of stalling.
        info = board.read(shard)
        assert info is not None and info.owner == "doomed-worker"
        assert board.claim(shard, "rerun-worker")


class TestObservability:
    """Heartbeats, the plan manifest, and the workers-status view."""

    def test_run_leaves_plan_and_heartbeats_until_purge(self, tmp_path, monkeypatch):
        from repro.parallel import collect_workers_status, format_workers_status

        # Keep the namespace's markers alive past the run so the status
        # view can be asserted against real worker output.
        monkeypatch.setattr(LeaseBoard, "purge", lambda self: None)
        store = ExperimentStore(tmp_path / "store")
        stats = run_cells_parallel(
            ["fig7"], {"fig7": {"array_sizes": (32,)}}, store, workers=2, nshards=4
        )
        statuses = collect_workers_status(store)
        assert len(statuses) == 1
        status = statuses[0]
        assert status.plan is not None
        assert status.plan["names"] == ["fig7"]
        assert status.plan["workers"] == 2
        assert status.plan["driver"] == "local"
        assert status.nshards == 4
        assert len(status.done) == 4, "every shard must carry a done marker"
        owners = sorted(beat.owner for beat in status.heartbeats)
        assert len(owners) == 2
        assert owners[0].startswith("worker-0") and owners[1].startswith("worker-1")
        for beat in status.heartbeats:
            assert beat.info["pid"] > 0
            assert "computed" in beat.info
        text = format_workers_status(statuses)
        assert "4/4 shards done" in text
        assert "worker-0" in text and "worker-1" in text
        assert sum(stat.computed for stat in stats) > 0

    def test_worker_stats_carry_race_accounting(self):
        stats = WorkerStats(worker_id=0, shards=[1], computed=2)
        assert stats.lost_races == 0 and stats.abandoned == 0
        text = format_worker_summary(
            [WorkerStats(worker_id=0, shards=[1], computed=2, lost_races=3, abandoned=1)]
        )
        assert "lost races 3" in text and "abandoned 1" in text

    def test_clean_runs_do_not_mention_race_accounting(self):
        text = format_worker_summary([WorkerStats(worker_id=0, shards=[1], computed=2)])
        assert "lost races" not in text and "abandoned" not in text

    def test_status_flags_heartbeats_older_than_the_lease_ttl(self, tmp_path):
        """A record with no beat for over a TTL belongs to a dead worker.

        Regression: heartbeat files were never aged, so `repro workers
        status` showed long-dead workers indistinguishably from live ones.
        """
        from repro.parallel import collect_workers_status, format_workers_status

        store = ExperimentStore(tmp_path / "store")
        board = LeaseBoard(store.root, "ns-stale", ttl=30.0)
        board.write_plan({"names": ["fig7"], "nshards": 4, "lease_ttl": 30.0})
        board.beat("worker-0-gone")
        statuses = collect_workers_status(store)
        assert statuses[0].ttl == 30.0
        fresh = format_workers_status(statuses, now=time.time())
        assert "STALE" not in fresh
        aged = format_workers_status(statuses, now=time.time() + 100.0)
        assert "STALE" in aged
        assert "ttl 30s" in aged
