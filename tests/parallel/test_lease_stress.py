"""Repetition stress battery for the lease takeover protocol.

The historical two-winner TOCTOU (read-then-rename takeover) only
surfaced intermittently — a thread had to complete a full steal inside
another thread's read/rename window.  This module hammers exactly that
window in a loop so CI can run it hundreds of times per job.

``REPRO_LEASE_STRESS_ROUNDS`` scales the repetition count (default 20
for local runs; the dedicated CI job raises it to 200).  Every round
must produce *exactly one* winner: two winners is the original TOCTOU,
zero winners is the vacancy window a naive rename-away fix would have
introduced.
"""
from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from threading import Barrier

import pytest

from repro.store.leases import LeaseBoard

ROUNDS = int(os.environ.get("REPRO_LEASE_STRESS_ROUNDS", "20"))
CLAIMANTS = 16


def _race_one_round(root, namespace: str, seed_expired: bool) -> int:
    """Race CLAIMANTS threads at a single shard; return the win count."""
    if seed_expired:
        seed = LeaseBoard(root, namespace, ttl=5.0)
        assert seed.claim(0, "crashed-worker")
        path = seed.lease_path(0)
        stale = json.loads(path.read_text())
        stale["expires"] = 0.0
        path.write_text(json.dumps(stale))

    barrier = Barrier(CLAIMANTS)

    def claimant(index: int) -> bool:
        board = LeaseBoard(root, namespace, ttl=30.0)
        barrier.wait()
        return board.claim(0, f"claimant-{index}")

    with ThreadPoolExecutor(max_workers=CLAIMANTS) as pool:
        wins = list(pool.map(claimant, range(CLAIMANTS)))
    return sum(wins)


@pytest.mark.parametrize("seed_expired", [False, True], ids=["vacant", "expired-seed"])
def test_repeated_claim_races_have_exactly_one_winner(tmp_path, seed_expired):
    for round_no in range(ROUNDS):
        namespace = f"stress-{'e' if seed_expired else 'v'}-{round_no}"
        wins = _race_one_round(tmp_path / "store", namespace, seed_expired)
        assert wins == 1, (
            f"round {round_no}: {wins} winners "
            f"({'two-winner TOCTOU' if wins > 1 else 'vacancy window'})"
        )
