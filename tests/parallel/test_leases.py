"""Lease-protocol correctness: single-winner claims, expiry, reclamation.

The invariants the process-parallel executor stands on (see
``src/repro/store/leases.py``):

* concurrent claimants of one shard never both win — neither on a vacant
  slot, nor when racing to take over an expired lease;
* an expired (or torn) lease is reclaimable by exactly one new claimant;
* completion markers are permanent: a done shard is never claimable again.

The hypothesis suite drives randomized operation schedules against a fake
clock (deterministic expiry); the thread and fork batteries race *real*
claimants through the same filesystem arbitration the production workers use.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.leases import (
    DEFAULT_LEASE_TTL,
    LEASE_TTL_ENV_VAR,
    LeaseBoard,
    resolve_lease_ttl,
)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def board(tmp_path, clock):
    return LeaseBoard(tmp_path / "store", "unit", ttl=30.0, clock=clock)


class TestResolveLeaseTtl:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "5")
        assert resolve_lease_ttl(7.5) == 7.5

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "5")
        assert resolve_lease_ttl() == 5.0

    def test_default(self, monkeypatch):
        monkeypatch.delenv(LEASE_TTL_ENV_VAR, raising=False)
        assert resolve_lease_ttl() == DEFAULT_LEASE_TTL

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(LEASE_TTL_ENV_VAR, "soon")
        with pytest.raises(ValueError, match="REPRO_LEASE_TTL"):
            resolve_lease_ttl()

    @pytest.mark.parametrize("ttl", [0, -1.0])
    def test_non_positive_rejected(self, ttl):
        with pytest.raises(ValueError, match="positive"):
            resolve_lease_ttl(ttl)


class TestClaimLifecycle:
    def test_vacant_shard_is_claimable_once(self, board):
        assert board.claim(1, "alice")
        assert not board.claim(1, "bob")
        info = board.read(1)
        assert info.owner == "alice" and info.shard == 1

    def test_release_makes_the_shard_claimable_again(self, board):
        assert board.claim(1, "alice")
        board.release(1, "alice")
        assert board.claim(1, "bob")

    def test_release_by_non_owner_is_a_noop(self, board):
        assert board.claim(1, "alice")
        board.release(1, "bob")
        assert board.read(1).owner == "alice"

    def test_live_lease_blocks_until_expiry(self, board, clock):
        assert board.claim(2, "alice")
        clock.advance(29.9)
        assert not board.claim(2, "bob")
        clock.advance(0.2)
        assert board.claim(2, "bob")
        assert board.read(2).owner == "bob"
        assert board.steals == 1

    def test_renew_extends_the_expiry(self, board, clock):
        assert board.claim(3, "alice")
        clock.advance(25.0)
        assert board.renew(3, "alice")
        clock.advance(25.0)  # 50s after claim, 25s after renewal
        assert not board.claim(3, "bob")

    def test_renew_fails_after_losing_the_lease(self, board, clock):
        assert board.claim(4, "alice")
        clock.advance(31.0)
        assert board.claim(4, "bob")
        assert not board.renew(4, "alice")

    def test_renew_on_vacant_shard_fails(self, board):
        assert not board.renew(9, "alice")

    def test_done_shard_is_never_claimable(self, board, clock):
        assert board.claim(5, "alice")
        board.mark_done(5, "alice")
        assert board.is_done(5)
        assert not board.claim(5, "bob")
        clock.advance(1e6)
        assert not board.claim(5, "bob")
        # mark_done released the lease file; only the done marker remains.
        assert board.read(5) is None

    def test_pending_and_all_done(self, board):
        assert board.pending(3) == [1, 2, 3]
        board.claim(2, "alice")
        board.mark_done(2, "alice")
        assert board.pending(3) == [1, 3]
        for shard in (1, 3):
            board.claim(shard, "alice")
            board.mark_done(shard, "alice")
        assert board.all_done(3)

    def test_purge_removes_all_markers(self, board):
        board.claim(1, "alice")
        board.mark_done(1, "alice")
        board.purge()
        assert not board.directory.exists()
        assert not board.is_done(1)

    def test_torn_lease_blocks_until_mtime_expiry(self, board, clock, tmp_path):
        """A claimant that died between create and payload write."""
        path = board.lease_path(7)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("")  # unreadable: no embedded expiry
        assert not board.claim(7, "bob")
        # Age the file past the TTL (the mtime stands in for the expiry).
        old = clock() - 31.0
        os.utime(path, (old, old))
        clock.now = 1000.0
        assert board.claim(7, "bob")
        assert board.read(7).owner == "bob"

    def test_lease_file_is_valid_json_with_expiry(self, board, clock):
        board.claim(1, "alice")
        data = json.loads(board.lease_path(1).read_text())
        assert data["expires"] == pytest.approx(clock() + 30.0)
        assert data["owner"] == "alice"

    def test_namespaces_are_isolated(self, tmp_path, clock):
        one = LeaseBoard(tmp_path / "store", "plan-a", ttl=30.0, clock=clock)
        two = LeaseBoard(tmp_path / "store", "plan-b", ttl=30.0, clock=clock)
        assert one.claim(1, "alice")
        assert two.claim(1, "bob")
        one.mark_done(1, "alice")
        assert not two.is_done(1)


# ----------------------------------------------------------------------
# Hypothesis: randomized schedules against the single-winner model
# ----------------------------------------------------------------------
OWNERS = ("w0", "w1", "w2", "w3")


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(
        st.one_of(
            st.tuples(st.just("claim"), st.sampled_from(OWNERS)),
            st.tuples(st.just("release"), st.sampled_from(OWNERS)),
            st.tuples(st.just("renew"), st.sampled_from(OWNERS)),
            st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=25.0)),
        ),
        max_size=40,
    )
)
def test_schedules_never_admit_two_live_owners(tmp_path_factory, steps):
    """Model-based check: whatever the schedule, at most one claim is live.

    The model tracks who must own the lease; claim/renew/release results must
    match it exactly, including expiry-driven ownership loss.
    """
    root = tmp_path_factory.mktemp("hyp")
    clock = FakeClock()
    board = LeaseBoard(root / "store", "hyp", ttl=10.0, clock=clock)
    owner_of_record = None
    expiry = None
    for action, value in steps:
        expired = expiry is not None and clock() >= expiry
        if action == "advance":
            clock.advance(value)
        elif action == "claim":
            won = board.claim(1, value)
            if owner_of_record is None or expired:
                assert won, "a vacant/expired slot must be claimable"
                owner_of_record, expiry = value, clock() + 10.0
            elif value == owner_of_record:
                # Re-claiming one's own live lease fails (it is held).
                assert not won
            else:
                assert not won, "a live lease must never be double-claimed"
        elif action == "renew":
            renewed = board.renew(1, value)
            if owner_of_record == value and not expired:
                assert renewed
                expiry = clock() + 10.0
            elif owner_of_record != value:
                assert not renewed
            # An expired-but-unstolen lease may still renew (the owner beat
            # the thieves to it) — both outcomes are legal; trust the board.
            elif renewed:
                expiry = clock() + 10.0
        elif action == "release":
            board.release(1, value)
            if owner_of_record == value:
                owner_of_record, expiry = None, None


@settings(max_examples=15, deadline=None)
@given(claimants=st.integers(min_value=2, max_value=8), expired=st.booleans())
def test_concurrent_claimants_never_both_win(tmp_path_factory, claimants, expired):
    """Racing threads — through the real filesystem arbitration — yield one winner.

    ``expired=True`` pre-seeds the shard with a dead worker's expired lease,
    so the race is over the takeover path (mutex-serialized in-place
    replacement) rather than the vacant path (exclusive-create arbitration);
    both must admit exactly one winner.
    """
    root = tmp_path_factory.mktemp("race")
    clock = FakeClock()
    board = LeaseBoard(root / "store", "race", ttl=10.0, clock=clock)
    if expired:
        assert board.claim(1, "dead-worker")
        clock.advance(11.0)
    with ThreadPoolExecutor(max_workers=claimants) as pool:
        wins = list(pool.map(lambda i: board.claim(1, f"claimant-{i}"), range(claimants)))
    assert sum(wins) == 1
    winner = board.read(1)
    assert winner is not None and winner.owner.startswith("claimant-")


# ----------------------------------------------------------------------
# Deterministic steal interleavings via the pause-point seam
#
# Each test pins one read-check-write window the un-fenced protocol left
# open: the pause hook fires inside the victim's window, a thief board
# (no hook) completes a full steal there, and the fenced protocol must
# detect it — claim reports a lost race, renew refuses to resurrect,
# release refuses to unlink the thief's live lease.
# ----------------------------------------------------------------------
class TestFencedInterleavings:
    def _boards(self, tmp_path, clock, hooks):
        """A victim board wired to the pause seam, and a hook-free thief."""
        def pause(label):
            action = hooks.pop(label, None)
            if action is not None:
                action()

        victim = LeaseBoard(tmp_path / "store", "seam", ttl=30.0, clock=clock, pause=pause)
        thief = LeaseBoard(tmp_path / "store", "seam", ttl=30.0, clock=clock)
        return victim, thief

    def test_steal_during_claim_takeover_is_a_lost_race(self, tmp_path, clock):
        """Regression: the two-winner TOCTOU of the rename-by-path takeover.

        The victim observes an expired lease; before it can take over, a
        thief completes a full takeover and holds a *fresh* lease at the
        same path.  The old protocol renamed that fresh lease away and won
        anyway (two winners); the fenced protocol must re-validate expiry
        under the shard mutex and report a lost race.
        """
        hooks = {}
        victim, thief = self._boards(tmp_path, clock, hooks)
        seed = LeaseBoard(tmp_path / "store", "seam", ttl=30.0, clock=clock)
        assert seed.claim(1, "dead-worker")
        clock.advance(31.0)
        hooks["claim:pre-takeover"] = lambda: thief.claim(1, "thief") or pytest.fail(
            "the thief's takeover must succeed inside the victim's window"
        )
        assert not victim.claim(1, "victim"), "acting on the stale read must lose"
        assert victim.lost_races == 1
        holder = victim.read(1)
        assert holder.owner == "thief", "the thief's fresh lease must survive intact"
        assert thief.renew(1, "thief"), "the thief must still own its acquisition"

    def test_takeover_attempt_against_a_held_mutex_loses(self, tmp_path, clock):
        """While one claimant is inside the takeover critical section, a
        racing claimant cannot interleave — it reports a lost race."""
        hooks = {}
        victim, thief = self._boards(tmp_path, clock, hooks)
        seed = LeaseBoard(tmp_path / "store", "seam", ttl=30.0, clock=clock)
        assert seed.claim(1, "dead-worker")
        clock.advance(31.0)
        outcomes = {}
        hooks["claim:locked"] = lambda: outcomes.setdefault("thief", thief.claim(1, "thief"))
        assert victim.claim(1, "victim"), "the mutex holder completes its takeover"
        assert outcomes == {"thief": False}, "the serialized thief must lose"
        assert victim.read(1).owner == "victim"
        assert thief.lost_races == 1

    def test_steal_during_renew_cannot_resurrect_the_lease(self, tmp_path, clock):
        """Regression: the renew() lost-update.

        The victim's pre-lock ownership check passes; a thief then steals
        the (expired) lease inside the window before the victim's write.
        The un-fenced renewal overwrote the thief's lease — resurrecting a
        dead acquisition and leaving two workers computing one shard.  The
        fenced renewal re-reads under the mutex, sees the thief's token,
        returns False, and the victim must abandon the shard.
        """
        hooks = {}
        victim, thief = self._boards(tmp_path, clock, hooks)
        assert victim.claim(3, "victim")
        clock.advance(31.0)  # expired: the thief's steal is legitimate
        hooks["renew:pre-lock"] = lambda: thief.claim(3, "thief") or pytest.fail(
            "the thief's steal must succeed inside the renew window"
        )
        assert not victim.renew(3, "victim"), "a stolen lease must not be resurrected"
        assert victim.fenced_renewals == 1
        assert victim.read(3).owner == "thief", "the thief's lease must survive"
        # The refusal is final: the victim's token is gone, so even a renew
        # with no interleaving stays refused.
        assert not victim.renew(3, "victim")

    def test_steal_during_release_cannot_unlink_the_thiefs_lease(self, tmp_path, clock):
        """Regression: release() unlinking a thief's live lease.

        Same window as the renew lost-update, on the release path: the
        victim's pre-lock check passes, the thief steals, and the un-fenced
        release then unlinked the thief's *live* lease — reopening the
        shard to a second claimant while the thief computed it.  The fenced
        release verifies the token under the mutex and leaves it alone.
        """
        hooks = {}
        victim, thief = self._boards(tmp_path, clock, hooks)
        assert victim.claim(5, "victim")
        clock.advance(31.0)
        hooks["release:pre-lock"] = lambda: thief.claim(5, "thief") or pytest.fail(
            "the thief's steal must succeed inside the release window"
        )
        victim.release(5, "victim")
        holder = victim.read(5)
        assert holder is not None and holder.owner == "thief", (
            "the thief's live lease must not be unlinked"
        )
        assert victim.fenced_releases == 1
        assert thief.renew(5, "thief")

    def test_fence_token_outlives_owner_name_collisions(self, tmp_path, clock):
        """Ownership is the (owner, token) acquisition, not the owner string.

        A lease re-acquired under the *same* owner id by a different board
        (a restarted worker process reusing its name) carries a new token;
        the stale board's renew/release must be refused even though the
        owner strings match.
        """
        stale = LeaseBoard(tmp_path / "store", "seam", ttl=30.0, clock=clock)
        assert stale.claim(1, "worker-0")
        clock.advance(31.0)
        reborn = LeaseBoard(tmp_path / "store", "seam", ttl=30.0, clock=clock)
        assert reborn.claim(1, "worker-0"), "the restarted process re-acquires"
        assert not stale.renew(1, "worker-0"), "the old acquisition is fenced out"
        stale.release(1, "worker-0")
        assert reborn.read(1) is not None, "the new acquisition must survive"
        assert reborn.renew(1, "worker-0")

    def test_lease_files_carry_the_fence_token(self, board):
        assert board.claim(1, "alice")
        data = json.loads(board.lease_path(1).read_text())
        assert data["token"] and len(data["token"]) == 16
        assert board.read(1).token == data["token"]


# ----------------------------------------------------------------------
# Real multi-process races (the production arbitration end to end)
# ----------------------------------------------------------------------
def _claim_once(root: str, shard: int, owner: str, barrier, results) -> None:
    board = LeaseBoard(root, "mp", ttl=5.0)
    barrier.wait()
    results.put((owner, board.claim(shard, owner)))


@pytest.fixture
def mp_context():
    # fork keeps the children on the test process's sys.path (src layout).
    return multiprocessing.get_context("fork")


class TestMultiProcessClaims:
    @pytest.mark.parametrize("processes", [2, 4])
    def test_exactly_one_process_wins_a_vacant_shard(self, tmp_path, mp_context, processes):
        barrier = mp_context.Barrier(processes)
        results = mp_context.Queue()
        workers = [
            mp_context.Process(
                target=_claim_once,
                args=(str(tmp_path / "store"), 1, f"proc-{index}", barrier, results),
            )
            for index in range(processes)
        ]
        for proc in workers:
            proc.start()
        outcomes = [results.get(timeout=60) for _ in workers]
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert sum(won for _, won in outcomes) == 1
        board = LeaseBoard(tmp_path / "store", "mp", ttl=5.0)
        winner = board.read(1)
        assert winner is not None
        assert (winner.owner, True) in outcomes

    def test_expired_lease_reclaimed_by_exactly_one_process(self, tmp_path, mp_context):
        clock = FakeClock()
        seed = LeaseBoard(tmp_path / "store", "mp", ttl=5.0, clock=clock)
        assert seed.claim(1, "crashed-worker")
        # Rewind the lease so the children (on the real clock) see it expired.
        path = seed.lease_path(1)
        stale = json.loads(path.read_text())
        stale["expires"] = 0.0
        path.write_text(json.dumps(stale))

        barrier = mp_context.Barrier(3)
        results = mp_context.Queue()
        workers = [
            mp_context.Process(
                target=_claim_once,
                args=(str(tmp_path / "store"), 1, f"thief-{index}", barrier, results),
            )
            for index in range(3)
        ]
        for proc in workers:
            proc.start()
        outcomes = [results.get(timeout=60) for _ in workers]
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert sum(won for _, won in outcomes) == 1
        new_owner = LeaseBoard(tmp_path / "store", "mp", ttl=5.0).read(1)
        assert new_owner.owner.startswith("thief-")


def _churn_worker(root: str, nshards: int, rounds: int, owner: str, barrier, results) -> None:
    """Claim/compute/release churn over every shard, recording mutual-exclusion
    violations via an O_EXCL critical-section marker next to each shard."""
    board = LeaseBoard(root, "churn", ttl=10.0)
    violations = 0
    wins = 0
    barrier.wait()
    for round_no in range(rounds):
        for shard in range(nshards):
            if not board.claim(shard, owner):
                continue
            wins += 1
            marker = board.directory / f"shard-{shard}.busy"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                violations += 1
            else:
                os.close(fd)
                if not board.renew(shard, owner):
                    violations += 1  # a held, unexpired lease must renew
                os.unlink(marker)
            board.release(shard, owner)
    results.put((owner, wins, violations))


class TestMultiProcessStress:
    def test_churn_never_admits_two_holders(self, tmp_path, mp_context):
        """Four processes churn claim/renew/release over four shards; the
        O_EXCL busy-marker proves at most one holder per shard at any time,
        and every held lease renews successfully."""
        nprocs, nshards, rounds = 4, 4, 15
        barrier = mp_context.Barrier(nprocs)
        results = mp_context.Queue()
        workers = [
            mp_context.Process(
                target=_churn_worker,
                args=(str(tmp_path / "store"), nshards, rounds, f"proc-{index}", barrier, results),
            )
            for index in range(nprocs)
        ]
        for proc in workers:
            proc.start()
        outcomes = [results.get(timeout=120) for _ in workers]
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert sum(violations for _, _, violations in outcomes) == 0
        assert sum(wins for _, wins, _ in outcomes) > 0, "the churn must make progress"

    def test_expired_seeds_stolen_exactly_once_per_shard(self, tmp_path, mp_context):
        """Every shard starts with an expired lease; a posse of processes
        races to steal all of them at once.  Each shard must end with
        exactly one winner — no two-winner takeovers, no vacant shards."""
        nshards, nprocs = 3, 4
        seed = LeaseBoard(tmp_path / "store", "mp", ttl=5.0)
        for shard in range(nshards):
            assert seed.claim(shard, "crashed-worker")
            path = seed.lease_path(shard)
            stale = json.loads(path.read_text())
            stale["expires"] = 0.0
            path.write_text(json.dumps(stale))

        def steal_all(root, owner, barrier, results):
            board = LeaseBoard(root, "mp", ttl=5.0)
            barrier.wait()
            won = [shard for shard in range(nshards) if board.claim(shard, owner)]
            results.put((owner, won))

        barrier = mp_context.Barrier(nprocs)
        results = mp_context.Queue()
        workers = [
            mp_context.Process(
                target=steal_all,
                args=(str(tmp_path / "store"), f"thief-{index}", barrier, results),
            )
            for index in range(nprocs)
        ]
        for proc in workers:
            proc.start()
        outcomes = [results.get(timeout=120) for _ in workers]
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        winners_per_shard = {shard: 0 for shard in range(nshards)}
        for _, won in outcomes:
            for shard in won:
                winners_per_shard[shard] += 1
        assert winners_per_shard == {shard: 1 for shard in range(nshards)}
        board = LeaseBoard(tmp_path / "store", "mp", ttl=5.0)
        for shard in range(nshards):
            assert board.read(shard).owner.startswith("thief-")


class TestStoreIntegration:
    def test_store_clear_removes_lease_state(self, tmp_path):
        from repro.store import ExperimentStore

        store = ExperimentStore(tmp_path / "store")
        store.put("k", "ab" * 16, {"v": 1})
        board = LeaseBoard(store.root, "plan", ttl=30.0)
        board.claim(1, "alice")
        board.mark_done(2, "alice")
        store.clear()
        assert not (store.root / "leases").exists()
        assert store.get("k", "ab" * 16) is None


class TestExpireLease:
    """Parent-side fast expiry after terminating workers (interrupt teardown)."""

    def test_live_lease_becomes_immediately_claimable(self, board, clock):
        assert board.claim(1, "worker-a")
        assert not board.claim(1, "worker-b")
        assert board.expire_lease(1)
        assert board.claim(1, "worker-b")

    def test_expiry_preserves_owner_and_fence_token(self, board, clock):
        # A nudge, not a revocation: only the expiry moves, so the fencing
        # rules still apply to whoever acts on the lease next.
        board.claim(2, "worker-a")
        before = board.read(2)
        clock.advance(1.0)
        assert board.expire_lease(2)
        after = board.read(2)
        assert after.owner == before.owner
        assert after.token == before.token
        assert after.acquired == before.acquired
        assert after.expires == clock.now

    def test_vacant_shard_reports_false(self, board):
        assert board.expire_lease(3) is False

    def test_already_expired_lease_reports_true(self, board, clock):
        board.claim(4, "worker-a")
        clock.advance(board.ttl + 1.0)
        assert board.expire_lease(4) is True

    def test_surviving_owner_still_renews_after_expiry(self, board, clock):
        # A worker that was NOT actually dead re-extends on its next fenced
        # renewal — expiry must not have invalidated its token.
        board.claim(5, "worker-a")
        assert board.expire_lease(5)
        assert board.renew(5, "worker-a")
        assert not board.claim(5, "worker-b")


class TestHeartbeatPruning:
    def test_stale_records_pruned_fresh_ones_kept(self, board, clock):
        board.beat("old-worker", computed=3)
        clock.advance(board.ttl + 1.0)
        board.beat("live-worker", computed=5)
        assert board.prune_heartbeats() == 1
        assert [beat.owner for beat in board.heartbeats()] == ["live-worker"]

    def test_records_younger_than_the_ttl_survive(self, board, clock):
        board.beat("w")
        clock.advance(board.ttl - 1.0)
        assert board.prune_heartbeats() == 0
        assert [beat.owner for beat in board.heartbeats()] == ["w"]

    def test_explicit_max_age_overrides_the_ttl(self, board, clock):
        board.beat("w")
        clock.advance(10.0)
        assert board.prune_heartbeats(max_age=5.0) == 1
        assert board.heartbeats() == []

    def test_torn_record_is_judged_by_file_mtime(self, board, clock):
        board.directory.mkdir(parents=True, exist_ok=True)
        torn = board.heartbeat_path("torn")
        torn.write_text("{not json")
        os.utime(torn, (clock.now - 100.0, clock.now - 100.0))
        assert board.prune_heartbeats() == 1
        assert not torn.exists()
