#!/usr/bin/env python
"""Docs-consistency gate: the registries and the docs must agree.

The README, ENGINE.md and docs/workloads.md enumerate registered names —
experiments, execution backends, zoo networks.  Those listings rot silently:
registering a new experiment without documenting it ships an invisible
feature, and a doc mentioning a renamed backend ships a lie.  This check
walks the live registries and fails when a registered name is missing from
the documents that promise to list it:

* every ``experiment_registry()`` name must appear in README.md and ENGINE.md;
* every ``backend_names()`` name must appear in README.md and ENGINE.md;
* every ``registered_networks()`` name must appear in docs/workloads.md.

Run from the repository root (CI does, via the docs-consistency job)::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backend import backend_names  # noqa: E402
from repro.engine.sweep import experiment_registry  # noqa: E402
from repro.workloads import registered_networks  # noqa: E402
import repro.experiments  # noqa: E402,F401  (populates the experiment registry)


def missing_names(document: Path, names: Sequence[str]) -> List[str]:
    """Names with no word-boundary occurrence anywhere in ``document``."""
    text = document.read_text(encoding="utf-8")
    return [
        name for name in names
        if not re.search(rf"\b{re.escape(name)}\b", text)
    ]


def main() -> int:
    experiments = tuple(sorted(experiment_registry()))
    backends = tuple(backend_names())
    networks = registered_networks()

    requirements: Tuple[Tuple[Path, Tuple[str, ...], str], ...] = (
        (REPO_ROOT / "README.md", experiments, "registered experiments"),
        (REPO_ROOT / "README.md", backends, "registered backends"),
        (REPO_ROOT / "ENGINE.md", experiments, "registered experiments"),
        (REPO_ROOT / "ENGINE.md", backends, "registered backends"),
        (REPO_ROOT / "docs" / "workloads.md", networks, "registered zoo networks"),
    )

    failures: List[str] = []
    for document, names, label in requirements:
        relative = document.relative_to(REPO_ROOT)
        if not document.exists():
            failures.append(f"{relative}: missing (must list the {label})")
            continue
        absent = missing_names(document, names)
        if absent:
            failures.append(f"{relative}: {label} not mentioned: {', '.join(absent)}")

    if failures:
        print("docs-consistency check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "Document every registered name (or unregister it); "
            "see docs/workloads.md and ENGINE.md.",
            file=sys.stderr,
        )
        return 1

    print(
        "docs-consistency OK: "
        f"{len(experiments)} experiments, {len(backends)} backends, "
        f"{len(networks)} networks all documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
