"""Evaluate compressed and dense mappings across hardware robustness scenarios.

The paper's evaluation assumes ideal analog behaviour; this example sweeps the
repository's *named* hardware corners (:mod:`repro.scenarios`: ideal, typical
RRAM, worst-case RRAM, PCM-like, faulty) and measures — with batched
Monte-Carlo trials, all independently-noisy programmings executed in one
batched matmul — how the proposed deployment (two smaller factor matrices per
layer) behaves compared with the dense im2col mapping of the same layer.

Run with:  python examples/noise_robustness.py [--trials 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.tables import format_table
from repro.lowrank.group import group_decompose, group_relative_error
from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.nn.models import resnet20
from repro.nn.modules import Conv2d
from repro.scenarios import scenario_registry


def representative_layer():
    """Pick a mid-network ResNet-20 convolution and return its weight matrix."""
    model = resnet20()
    conv = model.get_submodule("layer2.1.conv1")
    assert isinstance(conv, Conv2d)
    geometry = ConvGeometry(
        conv.in_channels, conv.out_channels, 3, 3, 16, 16, stride=1, padding=1, name="layer2.1.conv1"
    )
    return conv.im2col_weight(), geometry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=8,
                        help="independent noisy programmings per scenario")
    args = parser.parse_args()

    weight, geometry = representative_layer()
    rank, groups = geometry.m // 8, 4
    rng = np.random.default_rng(0)
    inputs = rng.standard_normal((64, geometry.n))

    approximation_error = group_relative_error(weight, group_decompose(weight, rank, groups))
    print(f"layer {geometry.name}: {geometry.m}x{geometry.n} im2col matrix, "
          f"group low-rank g={groups}, k={rank} "
          f"(intentional approximation error {approximation_error:.3f})")
    print()

    array = ArrayDims.square(64)
    rows = []
    for name, scenario in scenario_registry().items():
        ctx = scenario.context(array, seed=1)
        dense = ctx.dense_monte_carlo_plan(weight, trials=args.trials).run(inputs)
        compressed = ctx.lowrank_monte_carlo_plan(
            weight, rank=rank, trials=args.trials, groups=groups
        ).run(inputs)
        rows.append(
            [
                name,
                f"{dense.mean_relative_error:.3f} ± {dense.std_relative_error:.3f}",
                f"{compressed.mean_relative_error:.3f} ± {compressed.std_relative_error:.3f}",
                f"{compressed.mean_relative_error - dense.mean_relative_error:+.3f}",
            ]
        )

    print(format_table(
        ["hardware scenario", "dense im2col error", "group low-rank error", "gap"],
        rows,
        title=(
            f"relative output error on a {array} crossbar "
            f"({args.trials} Monte-Carlo trials, vs. exact software result)"
        ),
    ))
    print()
    print(
        "The compressed mapping's extra error stays close to its intentional\n"
        "approximation error across hardware corners: storing two smaller factor\n"
        "matrices does not amplify crossbar noise, so the cycle/energy savings of\n"
        "the proposed method carry over to non-ideal hardware.  Every trial of a\n"
        "scenario is bit-identical to a sequential per-trial simulation (see\n"
        "ENGINE.md, 'Scenario and Monte-Carlo layer')."
    )


if __name__ == "__main__":
    main()
