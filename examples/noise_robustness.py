"""Evaluate compressed and dense mappings on noisy crossbar hardware.

The paper's evaluation assumes ideal analog behaviour; this example uses the
repository's crossbar simulator to check how the proposed deployment (two
smaller factor matrices per layer) behaves under realistic RRAM non-idealities
— conductance variation, stuck-at faults and IR drop — compared with the dense
im2col mapping of the same layer.

Run with:  python examples/noise_robustness.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.imc.noise import NoiseModel
from repro.imc.peripherals import CellSpec, PeripheralSuite
from repro.imc.simulator import IMCSimulator
from repro.lowrank.group import group_decompose, group_relative_error
from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.nn.models import resnet20
from repro.nn.modules import Conv2d


def representative_layer():
    """Pick a mid-network ResNet-20 convolution and return its weight matrix."""
    model = resnet20()
    conv = model.get_submodule("layer2.1.conv1")
    assert isinstance(conv, Conv2d)
    geometry = ConvGeometry(
        conv.in_channels, conv.out_channels, 3, 3, 16, 16, stride=1, padding=1, name="layer2.1.conv1"
    )
    return conv.im2col_weight(), geometry


def main() -> None:
    weight, geometry = representative_layer()
    rank, groups = geometry.m // 8, 4
    rng = np.random.default_rng(0)
    inputs = rng.standard_normal((64, geometry.n))

    approximation_error = group_relative_error(weight, group_decompose(weight, rank, groups))
    print(f"layer {geometry.name}: {geometry.m}x{geometry.n} im2col matrix, "
          f"group low-rank g={groups}, k={rank} "
          f"(intentional approximation error {approximation_error:.3f})")
    print()

    array = ArrayDims.square(64)
    precision = PeripheralSuite(cell=CellSpec(conductance_levels=1024))

    scenarios = [
        ("ideal", NoiseModel.ideal()),
        ("variation 5%", NoiseModel(conductance_sigma=0.05, seed=1)),
        ("variation 10%", NoiseModel(conductance_sigma=0.10, seed=1)),
        ("variation 20%", NoiseModel(conductance_sigma=0.20, seed=1)),
        ("typical corner", NoiseModel.typical()),
        ("faults 1%", NoiseModel(stuck_at_rate=0.01, seed=1)),
        ("IR drop 5%", NoiseModel(ir_drop_severity=0.05, seed=1)),
    ]

    rows = []
    for label, noise in scenarios:
        simulator = IMCSimulator(array=array, peripherals=precision, noise=noise)
        dense = simulator.run_dense(weight, inputs)
        compressed = simulator.run_lowrank(weight, inputs, rank=rank, groups=groups)
        rows.append(
            [
                label,
                f"{dense.relative_error:.3f}",
                f"{compressed.relative_error:.3f}",
                f"{compressed.relative_error - dense.relative_error:+.3f}",
            ]
        )

    print(format_table(
        ["hardware corner", "dense im2col error", "group low-rank error", "gap"],
        rows,
        title=f"relative output error on a {array} crossbar (vs. exact software result)",
    ))
    print()
    print(
        "The compressed mapping's extra error stays close to its intentional\n"
        "approximation error across corners: storing two smaller factor matrices\n"
        "does not amplify crossbar noise, so the cycle/energy savings of the\n"
        "proposed method carry over to non-ideal hardware."
    )


if __name__ == "__main__":
    main()
