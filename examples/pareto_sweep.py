"""Sweep (group, rank) configurations and plot the accuracy / cycle Pareto front.

Reproduces one panel of Fig. 6 for a chosen network and array size: the full
proposed-method sweep, the pattern-pruning and PAIRS baselines, the Pareto
front extraction, and the headline speed-up / accuracy-gain numbers, rendered
as a text table plus an ASCII scatter plot.

Run with:  python examples/pareto_sweep.py [--network wrn16_4] [--array 64]
"""

from __future__ import annotations

import argparse

from repro.analysis.plots import ascii_scatter
from repro.analysis.tables import format_cycles, format_table
from repro.experiments.fig6 import headline_metrics, run_fig6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", choices=("resnet20", "wrn16_4"), default="resnet20")
    parser.add_argument("--array", type=int, choices=(32, 64, 128), default=64)
    args = parser.parse_args()

    result = run_fig6(networks=(args.network,), array_sizes=(args.array,))
    panel = result.panel(args.network, args.array)

    rows = [
        ["baseline", "im2col, uncompressed", f"{panel.baseline.accuracy:.1f}", format_cycles(panel.baseline.cycles)]
    ]
    for point in panel.ours:
        marker = "*" if point in panel.ours_pareto else " "
        rows.append([f"ours{marker}", point.detail, f"{point.accuracy:.1f}", format_cycles(point.cycles)])
    for point in panel.patdnn:
        rows.append(["PatDNN", point.detail, f"{point.accuracy:.1f}", format_cycles(point.cycles)])
    for point in panel.pairs:
        rows.append(["PAIRS", point.detail, f"{point.accuracy:.1f}", format_cycles(point.cycles)])

    print(format_table(
        ["method", "configuration", "accuracy (%)", "cycles"],
        rows,
        title=f"{args.network} on a {args.array}x{args.array} array (* = Pareto-optimal ours)",
    ))
    print()
    print(ascii_scatter(
        panel.series(),
        x_label="computing cycles",
        y_label="accuracy (%)",
        title=f"Fig. 6 panel — {args.network} @ {args.array}x{args.array}",
    ))
    print()
    metrics = headline_metrics(panel)
    print(
        f"headline: up to {metrics['max_speedup']:.1f}x speedup or "
        f"+{metrics['max_accuracy_gain']:.1f}% accuracy versus the pruning baselines"
    )


if __name__ == "__main__":
    main()
