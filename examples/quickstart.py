"""Quickstart: train, compress, quantize and map a small CNN end to end.

This walks the full pipeline of the paper on a laptop-sized problem:

1. train a small CNN on a synthetic CIFAR-like dataset,
2. compress its convolutions with group low-rank decomposition (Theorem 1),
3. quantize the compressed model with 4-bit QAT (the paper's setting),
4. map every compressed layer onto IMC crossbars and count computing cycles
   with and without the proposed SDK factor mapping (Theorem 2),
5. print an energy estimate against the uncompressed im2col baseline,
6. point at the full paper reproduction — including the process-parallel
   ``--workers`` mode that spreads the sweep grids across local cores.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations


from repro import lowrank, quantization
from repro.analysis.tables import format_kv, format_table
from repro.data.loaders import DataLoader
from repro.data.synthetic import make_tiny_dataset
from repro.imc.energy import EnergyModel
from repro.lowrank.layers import GroupLowRankConv2d
from repro.mapping.cycles import im2col_cycles, lowrank_cycles
from repro.mapping.geometry import ArrayDims, ConvGeometry
from repro.nn.models import SimpleCNN
from repro.nn.optim import Adam
from repro.training.evaluate import evaluate_accuracy
from repro.training.trainer import Trainer


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data and model
    # ------------------------------------------------------------------
    dataset = make_tiny_dataset(num_samples=240, num_classes=4, image_size=12, seed=0)
    train_set, test_set = dataset.split(0.8, seed=0)
    train_loader = DataLoader(train_set, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test_set, batch_size=32, shuffle=False)

    model = SimpleCNN(num_classes=4, in_channels=3, widths=(8, 16, 32), seed=0)
    print(f"model parameters (dense): {model.num_parameters()}")

    # ------------------------------------------------------------------
    # 2. Train the dense baseline
    # ------------------------------------------------------------------
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01), verbose=True)
    trainer.fit(train_loader, epochs=5, eval_loader=test_loader)
    dense_accuracy = evaluate_accuracy(model, test_loader)
    print(f"dense test accuracy: {dense_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 3. Group low-rank compression (the paper's contribution)
    # ------------------------------------------------------------------
    spec = lowrank.CompressionSpec(rank_divisor=2, groups=2)
    report = lowrank.compress_model(model, spec)
    print()
    print(report.describe())
    compressed_accuracy = evaluate_accuracy(model, test_loader)
    print(f"compressed test accuracy (before fine-tuning): {compressed_accuracy:.3f}")

    # Short fine-tuning of the factors, as the paper does after decomposition.
    Trainer(model, Adam(model.parameters(), lr=0.005)).fit(train_loader, epochs=2)
    finetuned_accuracy = evaluate_accuracy(model, test_loader)
    print(f"compressed test accuracy (after fine-tuning):  {finetuned_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 4. 4-bit quantization-aware training wrapper (paper's experimental setup)
    # ------------------------------------------------------------------
    qat_report = quantization.apply_qat(model, quantization.QuantizationConfig(weight_bits=4, activation_bits=4))
    print()
    print(qat_report.describe())
    Trainer(model, Adam(model.parameters(), lr=0.002)).fit(train_loader, epochs=1)
    qat_accuracy = evaluate_accuracy(model, test_loader)
    print(f"4-bit QAT compressed accuracy: {qat_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 5. IMC mapping: computing cycles and energy per compressed layer
    # ------------------------------------------------------------------
    array = ArrayDims.square(32)
    energy_model = EnergyModel()
    input_hw = {"features.3": 12, "features.6": 6}  # feature-map sizes seen by each compressed conv
    rows = []
    dense_energy = 0.0
    ours_energy = 0.0
    for name, module in model.named_modules():
        layer = getattr(module, "layer", None)
        if isinstance(layer, GroupLowRankConv2d):
            target = layer  # QAT wrapper around a compressed convolution
        elif isinstance(module, GroupLowRankConv2d) and not name.endswith(".layer"):
            target = module
        else:
            continue
        hw = input_hw.get(name, 6)
        geometry = ConvGeometry(
            target.in_channels,
            target.out_channels,
            target.kernel_size[0],
            target.kernel_size[1],
            hw,
            hw,
            stride=target.stride[0],
            padding=target.padding[0],
            name=name,
        )
        baseline = im2col_cycles(geometry, array)
        ours = lowrank_cycles(geometry, array, rank=target.rank, groups=target.groups, use_sdk=True)
        dense_energy += energy_model.im2col_energy(geometry, array).energy_pj
        ours_energy += energy_model.lowrank_energy(
            geometry, array, rank=target.rank, groups=target.groups, use_sdk=True
        ).energy_pj
        rows.append([name, baseline.cycles, ours.cycles, f"{baseline.cycles / ours.cycles:.2f}x"])

    print()
    print(format_table(["layer", "im2col cycles", "ours cycles", "speedup"], rows,
                       title=f"per-layer computing cycles on a {array} array"))
    print()
    print(
        "note: this quickstart model is intentionally tiny (8-32 channels), a regime\n"
        "where low-rank factors cannot beat the dense mapping; run\n"
        "examples/compress_resnet20.py for the paper-scale networks where the\n"
        "proposed method yields its 1.5-2.5x cycle reductions."
    )
    print()
    print(format_kv(
        {
            "dense accuracy": f"{dense_accuracy:.3f}",
            "compressed + QAT accuracy": f"{qat_accuracy:.3f}",
            "parameter compression ratio": f"{report.compression_ratio:.2f}x",
            "energy vs im2col": f"{ours_energy / dense_energy:.2f}",
        },
        title="summary",
    ))

    # ------------------------------------------------------------------
    # 6. Scaling up: the full paper reproduction, across all local cores
    # ------------------------------------------------------------------
    print()
    print(
        "next step — reproduce every table and figure of the paper, spreading\n"
        "the sweep grids over 4 worker processes (store-shard work stealing;\n"
        "output is byte-identical to --workers 1, and the warm store makes\n"
        "reruns assembly-only):\n"
        "    python -m repro --store .repro-store report --workers 4\n"
        "or, equivalently, REPRO_WORKERS=4 python -m repro report\n"
        "\n"
        "to share the sweep machinery over HTTP instead (deduplicated jobs,\n"
        "reports byte-identical to the CLI's --json output):\n"
        "    python -m repro --store .repro-store serve --port 8321\n"
        "    curl -X POST localhost:8321/sweeps -d '{\"workers\": 4}'\n"
        "\n"
        "for large single-host sweeps, the numba-compiled backend (an optional\n"
        "extra: pip install 'repro[compiled]') runs the fused tile kernel\n"
        "JIT-compiled and parallel, within a documented ULP-scale tolerance\n"
        "envelope of the float64 reference:\n"
        "    python -m repro backends                    # list + availability\n"
        "    python -m repro --backend compiled report"
    )


if __name__ == "__main__":
    main()
