"""Generate the Fig. 7 style energy report for both evaluation networks.

For every array size (32/64/128) and both networks (ResNet-20, WRN16-4), the
script reports the total IMC energy of:

* the uncompressed im2col mapping,
* pattern pruning with zero-skipping + mux peripherals (entries = 6),
* the proposed group low-rank compression (g = 4, k = m/8) with SDK mapping,

normalized to the im2col baseline, plus the component breakdown (DAC / cells /
ADC / pruning peripherals) of one representative configuration.

Run with:  python examples/imc_energy_report.py
"""

from __future__ import annotations

from repro.analysis.plots import ascii_bars
from repro.analysis.tables import format_table
from repro.experiments.fig7 import run_fig7
from repro.imc.energy import EnergyModel
from repro.mapping.geometry import ArrayDims
from repro.workloads import compressible_geometries


def component_breakdown(network: str, array_size: int) -> None:
    """Print the per-component energy split of the three methods for one setting."""
    model = EnergyModel()
    array = ArrayDims.square(array_size)
    geometries = compressible_geometries(network)

    def totals(method: str, **kwargs):
        report = model.network_energy(geometries, array, method, **kwargs)
        breakdown = {"dac": 0.0, "cell": 0.0, "adc": 0.0, "peripherals": 0.0}
        for layer in report.layers:
            breakdown["dac"] += layer.breakdown.dac_pj
            breakdown["cell"] += layer.breakdown.cell_pj
            breakdown["adc"] += layer.breakdown.adc_pj
            breakdown["peripherals"] += layer.breakdown.peripheral_overhead_pj
        return report.total_pj, breakdown

    rows = []
    for label, method, kwargs in (
        ("im2col", "im2col", {}),
        ("pattern pruning (e=6)", "pattern", {"entries": 6}),
        ("ours (g=4, k=m/8)", "lowrank", {"rank": 8, "groups": 4, "use_sdk": True}),
    ):
        total, parts = totals(method, **kwargs)
        rows.append(
            [
                label,
                f"{total / 1e6:.2f}",
                f"{parts['adc'] / total:.0%}",
                f"{parts['cell'] / total:.0%}",
                f"{parts['dac'] / total:.0%}",
                f"{parts['peripherals'] / total:.1%}",
            ]
        )
    print(format_table(
        ["method", "energy (uJ)", "ADC", "cells", "DAC", "sparsity peripherals"],
        rows,
        title=f"component breakdown — {network}, {array_size}x{array_size} array (compressible layers)",
    ))
    print()


def main() -> None:
    result = run_fig7()

    for network in ("resnet20", "wrn16_4"):
        rows = []
        chart = {}
        for bar in [b for b in result.bars if b.network == network]:
            rows.append(
                [
                    f"{bar.array_size}x{bar.array_size}",
                    "1.00",
                    f"{bar.pattern_normalized:.2f}",
                    f"{bar.ours_normalized:.2f}",
                    f"{bar.saving_vs_pattern:.0%}",
                    f"{bar.saving_vs_im2col:.0%}",
                ]
            )
            chart[f"{bar.array_size} im2col"] = 1.0
            chart[f"{bar.array_size} pattern"] = bar.pattern_normalized
            chart[f"{bar.array_size} ours"] = bar.ours_normalized
        print(format_table(
            ["array", "im2col", "pattern pruning", "ours", "saving vs pattern", "saving vs im2col"],
            rows,
            title=f"Fig. 7 — normalized energy, {network}",
        ))
        print()
        print(ascii_bars(chart, title=f"{network}: normalized energy (lower is better)"))
        print()

    component_breakdown("resnet20", 64)
    print(
        f"maximum energy saving vs pattern pruning: {result.max_saving_vs_pattern:.0%} "
        f"(paper reports up to 71%)"
    )
    print(
        f"maximum energy saving vs im2col:          {result.max_saving_vs_im2col:.0%} "
        f"(paper reports up to 80%)"
    )


if __name__ == "__main__":
    main()
