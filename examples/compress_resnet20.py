"""Compress ResNet-20 with group low-rank decomposition and map it onto IMC arrays.

This is the paper-scale workflow (Table I / Fig. 6 for one network):

1. instantiate ResNet-20 (CIFAR-10 geometry, expansion 1),
2. compress every eligible convolution with ``D_g(·)`` for a chosen
   (group count, rank divisor) configuration,
3. report per-layer reconstruction errors, the parameter compression ratio and
   the calibrated accuracy estimate,
4. count computing cycles on 32/64/128 crossbars with and without the SDK
   factor mapping and compare against the im2col baseline and pattern pruning.

Run with:  python examples/compress_resnet20.py [--groups 4] [--rank-divisor 8]
"""

from __future__ import annotations

import argparse

from repro import lowrank
from repro.analysis.tables import format_cycles, format_kv, format_table
from repro.experiments.common import (
    NetworkWorkload,
    baseline_cycles,
    lowrank_network_cycles,
    pattern_network_cycles,
)
from repro.mapping.geometry import ArrayDims
from repro.nn.models import resnet20


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--groups", type=int, default=4, help="group count g (paper: 1, 2, 4 or 8)")
    parser.add_argument("--rank-divisor", type=int, default=8, help="per-layer rank = m / divisor")
    parser.add_argument("--pruning-entries", type=int, default=6, help="pattern-pruning baseline entries")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 1-2. Model + compression
    # ------------------------------------------------------------------
    model = resnet20(num_classes=10)
    dense_parameters = model.num_parameters()
    spec = lowrank.CompressionSpec(rank_divisor=args.rank_divisor, groups=args.groups)
    report = lowrank.compress_model(model, spec)

    print(f"ResNet-20 compressed with {spec.label}")
    print(f"  dense parameters      : {dense_parameters}")
    print(f"  compressed parameters : {model.num_parameters()}")
    print(f"  conv compression ratio: {report.compression_ratio:.2f}x")
    print(f"  mean relative error   : {report.mean_relative_error:.4f}")
    print()

    rows = [
        [r.name, r.rank, r.groups, f"{r.relative_error:.4f}", f"{r.compression_ratio:.2f}x"]
        for r in report.records
    ]
    print(format_table(["layer", "rank", "groups", "rel. error", "ratio"], rows,
                       title="per-layer decomposition"))
    print()

    # ------------------------------------------------------------------
    # 3. Accuracy estimate (calibrated proxy, see DESIGN.md §2 and §6)
    # ------------------------------------------------------------------
    workload = NetworkWorkload("resnet20")
    accuracy = workload.proxy.lowrank_accuracy(args.rank_divisor, args.groups)
    pruning_accuracy = workload.proxy.pattern_pruning_accuracy(args.pruning_entries)
    print(format_kv(
        {
            "baseline accuracy (4-bit QAT)": f"{workload.baseline_accuracy:.1f}%",
            f"ours ({spec.label})": f"{accuracy:.1f}%",
            f"pattern pruning (e={args.pruning_entries})": f"{pruning_accuracy:.1f}%",
        },
        title="accuracy estimates",
    ))
    print()

    # ------------------------------------------------------------------
    # 4. Computing cycles across array sizes
    # ------------------------------------------------------------------
    cycle_rows = []
    for size in (32, 64, 128):
        array = ArrayDims.square(size)
        baseline = baseline_cycles(workload, array)
        with_sdk = lowrank_network_cycles(workload, array, args.rank_divisor, args.groups, use_sdk=True)
        without_sdk = lowrank_network_cycles(workload, array, args.rank_divisor, args.groups, use_sdk=False)
        pruning = pattern_network_cycles(workload, array, args.pruning_entries)
        cycle_rows.append(
            [
                f"{size}x{size}",
                format_cycles(baseline),
                format_cycles(without_sdk),
                format_cycles(with_sdk),
                format_cycles(pruning),
                f"{baseline / with_sdk:.2f}x",
            ]
        )
    print(format_table(
        ["array", "im2col", "ours w/o SDK", "ours w/ SDK", f"pattern e={args.pruning_entries}", "speedup vs im2col"],
        cycle_rows,
        title="network computing cycles",
    ))


if __name__ == "__main__":
    main()
