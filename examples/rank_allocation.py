"""Sensitivity-driven per-layer rank allocation (extension beyond the paper).

The paper uses one rank rule for every layer (``k = m / divisor``).  This
example shows the library's rank allocator, which measures each layer's
singular-value spectrum and distributes rank where it buys the most accuracy:

1. build ResNet-20 and compute every compressible layer's rank → error curve,
2. allocate ranks under (a) a relative-error budget and (b) a computing-cycle
   budget equal to what the paper's uniform g=4, k=m/8 configuration spends,
3. compare the resulting mean reconstruction error and cycles against the
   uniform rule, and print the deployment-style method comparison table.

Run with:  python examples/rank_allocation.py
"""

from __future__ import annotations

from repro.analysis.tables import format_cycles, format_table
from repro.imc.reports import MethodSpec, compare_methods
from repro.lowrank.rank_allocation import (
    allocate_ranks_for_cycle_budget,
    allocate_ranks_for_error_budget,
    network_sensitivity,
)
from repro.mapping.cycles import lowrank_cycles
from repro.mapping.geometry import ArrayDims
from repro.nn.models import resnet20
from repro.nn.modules import Conv2d
from repro.workloads import compressible_geometries

GROUPS = 4
UNIFORM_DIVISOR = 8
ARRAY = ArrayDims.square(64)


def main() -> None:
    geometries = compressible_geometries("resnet20")

    # Sensitivities from the actual (randomly initialized) ResNet-20 weights.
    model = resnet20()
    weights = {}
    for geometry in geometries:
        conv = model.get_submodule(geometry.name)
        assert isinstance(conv, Conv2d)
        weights[geometry.name] = conv.im2col_weight()
    sensitivities = network_sensitivity(geometries, groups=GROUPS, weights=weights)

    # Uniform paper rule: k = m / 8 for every layer.
    uniform_ranks = {g.name: max(1, g.m // UNIFORM_DIVISOR) for g in geometries}
    uniform_cycles = sum(
        lowrank_cycles(g, ARRAY, rank=uniform_ranks[g.name], groups=GROUPS, use_sdk=True).cycles
        for g in geometries
    )
    uniform_error = sum(
        sensitivities[g.name].error_at(uniform_ranks[g.name]) for g in geometries
    ) / len(geometries)

    # (a) error-budget allocation at the uniform rule's mean error.
    error_allocation = allocate_ranks_for_error_budget(sensitivities, uniform_error, groups=GROUPS)
    # (b) cycle-budget allocation at the uniform rule's cycle cost.
    cycle_allocation = allocate_ranks_for_cycle_budget(sensitivities, ARRAY, uniform_cycles, groups=GROUPS)

    rows = [
        [
            "uniform k=m/8 (paper rule)",
            f"{uniform_error:.4f}",
            format_cycles(uniform_cycles),
        ],
        [
            "error-budget allocation",
            f"{error_allocation.mean_error(sensitivities):.4f}",
            format_cycles(error_allocation.total_cycles(sensitivities, ARRAY)),
        ],
        [
            "cycle-budget allocation",
            f"{cycle_allocation.mean_error(sensitivities):.4f}",
            format_cycles(cycle_allocation.total_cycles(sensitivities, ARRAY)),
        ],
    ]
    print(format_table(
        ["strategy", "mean relative error", "cycles (64x64 array)"],
        rows,
        title=f"ResNet-20, g={GROUPS}: uniform rank rule vs. sensitivity-driven allocation",
    ))
    print()

    per_layer = [
        [name, uniform_ranks[name], cycle_allocation[name]]
        for name in sorted(uniform_ranks)
    ]
    print(format_table(
        ["layer", "uniform rank", "allocated rank"],
        per_layer,
        title="per-layer ranks under the cycle budget",
    ))
    print()

    methods = [
        MethodSpec("im2col (uncompressed)", "im2col"),
        MethodSpec("pattern pruning (e=6)", "pattern", {"entries": 6}),
        MethodSpec(f"uniform low-rank (g={GROUPS}, k=m/{UNIFORM_DIVISOR})", "lowrank",
                   {"rank_divisor": UNIFORM_DIVISOR, "groups": GROUPS, "use_sdk": True}),
    ]
    comparison = compare_methods(methods, geometries, ARRAY)
    print(comparison.describe(title="deployment comparison (compressible layers, 64x64 array)"))


if __name__ == "__main__":
    main()
