"""Walk a modern layer through the zoo: geometry → lowering → tiles → noise.

The paper maps plain CNN convolutions; this example follows one grouped
convolution, one depthwise convolution and one fused attention projection from
the workload zoo (:mod:`repro.workloads`) through the block-diagonal lowering
(:mod:`repro.mapping.grouped`) and onto noisy crossbar tiles, showing at each
step what the ``layer_families`` experiment measures in aggregate:

1. how many tiles the block-diagonal placement allocates vs. the dense
   bounding box (the closed form matches the tile layer exactly),
2. how much of the allocated cell capacity actually stores weights,
3. the Monte-Carlo output-error spread on a non-ideal scenario.

Run with:  python examples/layer_families.py [--trials 4] [--scenario typical_rram]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.tables import format_table
from repro.mapping.geometry import (
    ArrayDims,
    AttentionProjectionGeometry,
    GroupedConvGeometry,
    layer_family,
)
from repro.mapping.grouped import grouped_utilization, tiles_for_grouped_conv
from repro.mapping.cycles import tiles_for_matrix
from repro.scenarios import get_scenario, scenario_names
from repro.workloads import network_geometries


def pick_layer(network: str, family: str):
    """The middle layer of ``family`` in ``network`` — the experiment's convention."""
    matching = [g for g in network_geometries(network) if layer_family(g) == family]
    return matching[len(matching) // 2]


def random_weight(geometry, rng):
    """Weights in the family's native layout (kernel tensor or GEMM matrix)."""
    if isinstance(geometry, GroupedConvGeometry):
        return rng.normal(
            0.0,
            1.0 / np.sqrt(geometry.block_in_cols),
            size=(geometry.out_channels, geometry.group_in_channels,
                  geometry.kernel_h, geometry.kernel_w),
        )
    return rng.normal(0.0, 1.0 / np.sqrt(geometry.n), size=(geometry.m, geometry.n))


def plan_for(ctx, geometry, weight, trials):
    if isinstance(geometry, GroupedConvGeometry):
        return ctx.grouped_conv_monte_carlo_plan(weight, geometry, trials=trials)
    if isinstance(geometry, AttentionProjectionGeometry):
        return ctx.attention_monte_carlo_plan(weight, geometry, trials=trials)
    return ctx.dense_monte_carlo_plan(weight, trials=trials, geometry=geometry)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=4,
                        help="independent noisy programmings per layer")
    parser.add_argument("--scenario", choices=scenario_names(), default="typical_rram",
                        help="hardware scenario of the Monte-Carlo pass")
    parser.add_argument("--array", type=int, default=64, help="crossbar array size")
    args = parser.parse_args()

    array = ArrayDims.square(args.array)
    ctx = get_scenario(args.scenario).context(array, seed=0)
    rng = np.random.default_rng(0)

    layers = [
        ("grouped", "resnext20", pick_layer("resnext20", "grouped")),
        ("depthwise", "mobilenet_cifar", pick_layer("mobilenet_cifar", "depthwise")),
        ("attention", "tiny_transformer", pick_layer("tiny_transformer", "attention")),
    ]

    rows = []
    for family, network, geometry in layers:
        weight = random_weight(geometry, rng)
        plan = plan_for(ctx, geometry, weight, args.trials)
        inputs = rng.standard_normal((16, geometry.n))
        result = plan.run(inputs)

        dense_tiles = tiles_for_matrix(geometry.m, geometry.n, array)
        if isinstance(geometry, GroupedConvGeometry):
            predicted = tiles_for_grouped_conv(geometry, array)
            assert plan.allocated_tiles == predicted, "closed form must match tiles"
            utilization = grouped_utilization(geometry, array)
            used = utilization.used_cells / utilization.allocated_cells
        else:
            used = geometry.weight_count / (
                plan.allocated_tiles * array.rows * array.logical_cols
            )
        rows.append(
            [
                f"{family} ({network})",
                geometry.name,
                f"{geometry.m}x{geometry.n}",
                f"{plan.allocated_tiles} / {dense_tiles}",
                f"{100.0 * used:.1f}%",
                f"{result.mean_relative_error:.3f} ± {result.std_relative_error:.3f}",
            ]
        )

    print(format_table(
        ["family", "layer", "im2col shape", "tiles (block-diag / dense)",
         "cells used", "rel. error"],
        rows,
        title=(
            f"modern layers on a {array} crossbar, scenario {args.scenario!r} "
            f"({args.trials} Monte-Carlo trials)"
        ),
    ))
    print()
    print(
        "Grouped and depthwise convolutions lower to block-diagonal im2col\n"
        "matrices; programming them through the ordinary dense path skips every\n"
        "all-zero tile, so the allocation matches the closed-form block-diagonal\n"
        "count exactly (asserted above).  The depthwise row shows the catch: far\n"
        "fewer tiles than the dense bound, but the blocks are so skinny that the\n"
        "allocated cells sit almost entirely idle.  Run `python -m repro\n"
        "layer_families` for the full family x scenario sweep."
    )


if __name__ == "__main__":
    main()
