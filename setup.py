"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable in fully offline environments where the
``wheel`` package (needed by the PEP 660 editable build hooks) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
