"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable in fully offline environments where the
``wheel`` package (needed by the PEP 660 editable build hooks) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup(
    extras_require={
        # The HTTP experiment service (repro.server) runs without these —
        # `repro serve` falls back to a stdlib HTTP server — but the FastAPI
        # app factory and uvicorn deployment path need them:
        #     pip install -e .[server]
        "server": ["fastapi>=0.100", "uvicorn>=0.23"],
    }
)
