"""Packaging metadata (kept in setup.py; ``pyproject.toml`` carries tool config).

setup.py rather than PEP 621 so the package installs editable in fully
offline environments where the ``wheel`` package (needed by the PEP 660
editable build hooks) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517

Optional extras — the core install depends on numpy only, and never imports
an extra's packages at module scope (CI's no-extras smoke job enforces this):

    ========== ===================================== ==========================
    extra      enables                               pulls in
    ========== ===================================== ==========================
    compiled   the ``compiled`` execution backend    numba
               (numba-JIT fused tile executor)
    server     the FastAPI app factory + uvicorn     fastapi, uvicorn
               deployment path of ``repro serve``
               (the stdlib HTTP fallback runs
               without it)
    ========== ===================================== ==========================
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.9.0",
    description=(
        "Reproduction of group low-rank compression for in-memory computing: "
        "experiment engine, artifact store, parallel sweeps and HTTP service"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        # The numba-compiled execution backend (`--backend compiled`).
        # Without it the backend stays registered-but-unavailable and
        # resolving it names this extra:
        #     pip install 'repro[compiled]'
        "compiled": ["numba>=0.58"],
        # The HTTP experiment service (repro.server) runs without these —
        # `repro serve` falls back to a stdlib HTTP server — but the FastAPI
        # app factory and uvicorn deployment path need them:
        #     pip install 'repro[server]'
        "server": ["fastapi>=0.100", "uvicorn>=0.23"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
